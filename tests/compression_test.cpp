// Codec tests: fp16 scalar conversion against known bit patterns, model
// round trips under every codec, size accounting, quantization error bounds,
// and file checkpointing.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "comm/compression.hpp"
#include "comm/model_io.hpp"
#include "core/rng.hpp"
#include "models/zoo.hpp"
#include "nn/linear.hpp"

namespace fedkemf::comm {
namespace {

using core::Rng;
using core::Shape;
using core::Tensor;

TEST(HalfPrecision, KnownBitPatterns) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half(0.5f), 0x3800);
  EXPECT_EQ(float_to_half(65504.0f), 0x7BFF);  // max finite half
  EXPECT_EQ(float_to_half(1e6f), 0x7C00);      // overflow -> +inf
  EXPECT_EQ(float_to_half(std::numeric_limits<float>::infinity()), 0x7C00);
  EXPECT_NE(float_to_half(std::nanf("")) & 0x3FF, 0);  // NaN keeps payload bit
}

TEST(HalfPrecision, RoundTripWithinHalfUlp) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 2.0));
    const float back = half_to_float(float_to_half(v));
    // Half has 11 significand bits: relative error <= 2^-11.
    EXPECT_NEAR(back, v, std::fabs(v) * 0x1.0p-10 + 1e-7f) << v;
  }
}

TEST(HalfPrecision, SubnormalsSurvive) {
  const float tiny = 1e-5f;  // below half's normal range (min normal ~6.1e-5)
  const float back = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(back, tiny, tiny * 0.1f);
}

TEST(HalfPrecision, ExhaustiveHalfToFloatToHalf) {
  // Every finite half value must survive half->float->half exactly.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const std::uint16_t h = static_cast<std::uint16_t>(bits);
    if ((h & 0x7C00) == 0x7C00) continue;  // skip inf/nan
    ASSERT_EQ(float_to_half(half_to_float(h)), h) << std::hex << bits;
  }
}

std::unique_ptr<nn::Module> test_model(std::uint64_t seed) {
  Rng rng(seed);
  return models::build_model(
      models::ModelSpec{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                        .image_size = 8, .width_multiplier = 0.25},
      rng);
}

TEST(ModelCodec, Fp32RoundTripIsExact) {
  auto src = test_model(2);
  auto dst = test_model(3);
  const auto payload = encode_model(*src, Codec::kFp32);
  EXPECT_EQ(payload.size(), encoded_model_size(*src, Codec::kFp32));
  decode_model(payload, *dst);
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = 0; j < ps[i]->value.numel(); ++j) {
      ASSERT_EQ(pd[i]->value[j], ps[i]->value[j]);
    }
  }
}

class ModelCodecParam : public ::testing::TestWithParam<Codec> {};

TEST_P(ModelCodecParam, RoundTripPreservesValuesWithinCodecError) {
  const Codec codec = GetParam();
  auto src = test_model(4);
  auto dst = test_model(5);
  const auto payload = encode_model(*src, codec);
  EXPECT_EQ(payload.size(), encoded_model_size(*src, codec));
  decode_model(payload, *dst);
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const float absmax = ps[i]->value.abs_max();
    const float tolerance = codec == Codec::kFp32 ? 0.0f
                            : codec == Codec::kFp16
                                ? absmax * 0x1.0p-10f + 1e-6f
                                : absmax / 127.0f + 1e-6f;  // int8: half a step + rounding
    for (std::size_t j = 0; j < ps[i]->value.numel(); ++j) {
      ASSERT_NEAR(pd[i]->value[j], ps[i]->value[j], tolerance)
          << to_string(codec) << " param " << i << " entry " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, ModelCodecParam,
                         ::testing::Values(Codec::kFp32, Codec::kFp16, Codec::kInt8));

TEST(ModelCodec, SizeRatios) {
  auto model = test_model(6);
  const std::size_t fp32 = encoded_model_size(*model, Codec::kFp32);
  const std::size_t fp16 = encoded_model_size(*model, Codec::kFp16);
  const std::size_t int8 = encoded_model_size(*model, Codec::kInt8);
  // Headers shift the exact 2x/4x slightly; bound generously.
  EXPECT_LT(static_cast<double>(fp16) / static_cast<double>(fp32), 0.56);
  EXPECT_LT(static_cast<double>(int8) / static_cast<double>(fp32), 0.32);
}

TEST(ModelCodec, QuantizedModelStillPredicts) {
  // int8 quantization must not destroy the function: logits of the original
  // and the round-tripped model should correlate strongly.
  auto src = test_model(7);
  auto dst = test_model(8);
  decode_model(encode_model(*src, Codec::kInt8), *dst);
  src->set_training(false);
  dst->set_training(false);
  Rng rng(9);
  Tensor x = Tensor::normal(Shape::nchw(4, 3, 8, 8), rng);
  Tensor a = src->forward(x);
  Tensor b = dst->forward(x);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.98);
}

TEST(ModelCodec, RejectsCorruptPayloads) {
  auto model = test_model(10);
  auto payload = encode_model(*model, Codec::kFp16);
  payload[0] ^= 0xFF;  // magic
  EXPECT_THROW(decode_model(payload, *model), std::runtime_error);

  payload = encode_model(*model, Codec::kFp16);
  payload[8] = 99;  // codec byte
  EXPECT_THROW(decode_model(payload, *model), std::runtime_error);

  payload = encode_model(*model, Codec::kFp16);
  payload.pop_back();  // truncate
  EXPECT_THROW(decode_model(payload, *model), std::runtime_error);
}

TEST(ModelCodec, ZeroTensorInt8IsStable) {
  Rng rng(11);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 3, rng);
  net.parameters()[0]->value.fill(0.0f);  // absmax = 0 -> scale 0 path
  nn::Sequential dst;
  dst.emplace<nn::Linear>(4, 3, rng);
  decode_model(encode_model(net, Codec::kInt8), dst);
  EXPECT_EQ(dst.parameters()[0]->value.abs_max(), 0.0f);
}

TEST(ModelIo, SaveLoadRoundTrip) {
  auto src = test_model(12);
  auto dst = test_model(13);
  const std::string path = ::testing::TempDir() + "/fedkemf_ckpt.bin";
  save_model(*src, path, Codec::kFp32);
  load_model(path, *dst);
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ASSERT_EQ(pd[i]->value[0], ps[i]->value[0]);
  }
  std::remove(path.c_str());
}

TEST(ModelIo, SaveLoadCompressed) {
  auto src = test_model(14);
  auto dst = test_model(15);
  const std::string path = ::testing::TempDir() + "/fedkemf_ckpt_int8.bin";
  save_model(*src, path, Codec::kInt8);
  load_model(path, *dst);  // codec auto-detected from the header
  EXPECT_NEAR(dst->parameters()[0]->value[0], src->parameters()[0]->value[0],
              src->parameters()[0]->value.abs_max() / 100.0f);
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
  auto model = test_model(16);
  EXPECT_THROW(load_model("/nonexistent/path/x.bin", *model), std::runtime_error);
  EXPECT_THROW(save_model(*model, "/nonexistent/path/x.bin"), std::runtime_error);
}

TEST(ModelIo, SaveOverwritesStaleTempFileAndLeavesNoneBehind) {
  auto src = test_model(17);
  auto dst = test_model(18);
  const std::string path = ::testing::TempDir() + "/fedkemf_ckpt_atomic.bin";
  const std::string tmp_path = path + ".tmp";
  {
    // A leftover .tmp from an earlier crash must be harmlessly overwritten.
    std::ofstream garbage(tmp_path, std::ios::binary);
    garbage << "not a checkpoint";
  }
  save_model(*src, path, Codec::kFp32);
  // The staging file was renamed away, and the checkpoint loads cleanly.
  std::ifstream stale(tmp_path);
  EXPECT_FALSE(stale.good());
  load_model(path, *dst);
  ASSERT_EQ(dst->parameters()[0]->value[0], src->parameters()[0]->value[0]);
  std::remove(path.c_str());
}

TEST(ModelIo, TruncatedCheckpointReportsClearError) {
  auto src = test_model(19);
  const std::string path = ::testing::TempDir() + "/fedkemf_ckpt_trunc.bin";
  save_model(*src, path, Codec::kFp32);
  // Truncate to half the payload, as an interrupted copy would.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamsize full = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<std::size_t>(full / 2));
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    load_model(path, *src);
    FAIL() << "load_model accepted a truncated checkpoint";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("corrupt or truncated"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedkemf::comm
