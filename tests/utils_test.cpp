// Tests for the utility layer: thread pool semantics, CLI parsing, table
// rendering, formatting helpers, logging levels.

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "utils/cli.hpp"
#include "utils/logging.hpp"
#include "utils/stopwatch.hpp"
#include "utils/table.hpp"
#include "utils/thread_pool.hpp"

namespace fedkemf::utils {
namespace {

TEST(ThreadPool, InlineModeRunsEverything) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { hits[i] = static_cast<int>(i) + 1; });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hits[i], i + 1);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "should not be called"; });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ResultsIndependentOfPoolSize) {
  // Sum of i*i computed with different pool sizes must agree — this is the
  // determinism contract the FL simulator relies on.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<long> partial(100, 0);
    pool.parallel_for(100, [&](std::size_t i) { partial[i] = static_cast<long>(i * i); });
    return std::accumulate(partial.begin(), partial.end(), 0L);
  };
  const long expected = run(0);
  EXPECT_EQ(run(1), expected);
  EXPECT_EQ(run(4), expected);
  EXPECT_EQ(run(9), expected);
}

TEST(Cli, ParsesAllTypes) {
  Cli cli("test", "desc");
  int i = 1;
  double d = 1.0;
  bool b = false;
  std::string s = "x";
  std::size_t z = 2;
  cli.flag("int", &i, "an int");
  cli.flag("dbl", &d, "a double");
  cli.flag("flag", &b, "a bool");
  cli.flag("str", &s, "a string");
  cli.flag("size", &z, "a size");
  const char* argv[] = {"prog", "--int", "42", "--dbl=2.5", "--flag", "--str", "hello",
                        "--size", "7"};
  std::string error;
  ASSERT_TRUE(cli.try_parse(9, argv, &error)) << error;
  EXPECT_EQ(i, 42);
  EXPECT_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(z, 7u);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("test", "desc");
  int i = 0;
  cli.flag("int", &i, "an int");
  const char* argv[] = {"prog", "--bogus", "1"};
  std::string error;
  EXPECT_FALSE(cli.try_parse(3, argv, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(Cli, RejectsBadValue) {
  Cli cli("test", "desc");
  int i = 0;
  cli.flag("int", &i, "an int");
  const char* argv[] = {"prog", "--int", "notanumber"};
  std::string error;
  EXPECT_FALSE(cli.try_parse(3, argv, &error));
}

TEST(Cli, RejectsMissingValue) {
  Cli cli("test", "desc");
  int i = 0;
  cli.flag("int", &i, "an int");
  const char* argv[] = {"prog", "--int"};
  std::string error;
  EXPECT_FALSE(cli.try_parse(2, argv, &error));
}

TEST(Cli, RejectsNegativeForUnsigned) {
  Cli cli("test", "desc");
  std::size_t z = 0;
  cli.flag("size", &z, "a size");
  const char* argv[] = {"prog", "--size", "-3"};
  std::string error;
  EXPECT_FALSE(cli.try_parse(3, argv, &error));
}

TEST(Cli, HelpIsReported) {
  Cli cli("test", "desc");
  const char* argv[] = {"prog", "--help"};
  std::string error;
  EXPECT_FALSE(cli.try_parse(2, argv, &error));
  EXPECT_EQ(error, "help");
  EXPECT_NE(cli.usage().find("desc"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  Table table({"A", "Bee"});
  table.row().cell("x").cell(std::int64_t{42});
  table.row().cell("longer").cell(3.14159, 2);
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| A      | Bee  |"), std::string::npos);
  EXPECT_NE(md.find("| longer | 3.14 |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table table({"name", "value"});
  table.add_row({"with,comma", "with\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthValidated) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2.1 * 1024 * 1024), "2.10MB");
  EXPECT_EQ(format_bytes(4.01 * 1024 * 1024 * 1024), "4.01GB");
}

TEST(Formatting, SpeedupAndPercent) {
  EXPECT_EQ(format_speedup(51.08), "51.08x");
  EXPECT_EQ(format_percent(0.6495), "64.95%");
  EXPECT_EQ(format_percent(0.65, 0), "65%");
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("test") << "suppressed at error level";  // must not crash
  set_log_level(before);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.reset();
  EXPECT_LT(watch.seconds(), 1.0);
}

}  // namespace
}  // namespace fedkemf::utils
