// Elastic federation tests: the FedBuff-style staleness discount, the
// ChurnModel join/leave/rejoin trace, the bounded stale-update buffer, and
// the run-level equivalence properties — alpha -> inf degenerates to the
// discard-stragglers policy exactly, and zero-lateness staleness reproduces
// the no-deadline run exactly.

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/serialize.hpp"
#include "fl/fedavg.hpp"
#include "fl/feddf.hpp"
#include "fl/fedkemf.hpp"
#include "fl/fedmd.hpp"
#include "fl/fednova.hpp"
#include "fl/fedprox.hpp"
#include "fl/runner.hpp"
#include "fl/scaffold.hpp"
#include "fl/stale_buffer.hpp"
#include "sim/churn.hpp"
#include "sim/simulator.hpp"

namespace fedkemf::fl {
namespace {

FederationOptions small_federation(std::uint64_t seed = 53) {
  FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.data.noise_stddev = 0.5;
  options.train_samples = 240;
  options.test_samples = 96;
  options.server_pool_samples = 48;
  options.num_clients = 6;
  options.dirichlet_alpha = 0.1;
  options.seed = seed;
  return options;
}

models::ModelSpec mlp_spec() {
  return models::ModelSpec{.arch = "mlp", .num_classes = 4, .in_channels = 3,
                           .image_size = 8, .width_multiplier = 0.25};
}

LocalTrainConfig local_config() {
  LocalTrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  config.momentum = 0.9;
  return config;
}

// A deadline tight enough that the slow end of the default 10x compute /
// 20x bandwidth spread misses it — the straggler source for these tests.
sim::SimOptions straggler_sim() {
  sim::SimOptions sim;
  sim.deadline_seconds = 0.2;  // ~half the default fleet misses this
  sim.churn.min_staleness = 1;
  sim.churn.max_staleness = 2;
  return sim;
}

// ---- staleness_weight ----

TEST(StalenessWeight, FreshUpdateIsExactlyUnity) {
  // s == 0 is pinned to 1.0 for every alpha, including the degenerate ones.
  EXPECT_EQ(staleness_weight(0, 0.0), 1.0);
  EXPECT_EQ(staleness_weight(0, 1.0), 1.0);
  EXPECT_EQ(staleness_weight(0, 1e9), 1.0);
}

TEST(StalenessWeight, AlphaZeroTreatsLateWorkAsFresh) {
  for (std::size_t s = 0; s < 10; ++s) EXPECT_EQ(staleness_weight(s, 0.0), 1.0);
}

TEST(StalenessWeight, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(staleness_weight(1, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(staleness_weight(3, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(staleness_weight(1, 2.0), 0.25);
}

TEST(StalenessWeight, MonotoneInStalenessAndAlpha) {
  for (std::size_t s = 1; s < 8; ++s) {
    EXPECT_LT(staleness_weight(s + 1, 1.0), staleness_weight(s, 1.0));
    EXPECT_LT(staleness_weight(s, 2.0), staleness_weight(s, 1.0));
  }
}

TEST(StalenessWeight, HugeAlphaUnderflowsToExactZero) {
  // The alpha -> inf limit must *reach* zero so discounted entries are
  // skipped outright and the policy degenerates to discard bitwise.
  EXPECT_EQ(staleness_weight(1, 1e6), 0.0);
  EXPECT_EQ(staleness_weight(5, 1e6), 0.0);
}

// ---- ChurnModel ----

sim::ChurnOptions dynamic_churn() {
  sim::ChurnOptions churn;
  churn.initial_fraction = 0.75;
  churn.leave_prob = 0.2;
  churn.rejoin_prob = 0.5;
  churn.join_prob = 0.3;
  return churn;
}

TEST(ChurnModel, StaticOptionsAreNotDynamic) {
  EXPECT_FALSE(sim::ChurnOptions{}.dynamic());
  EXPECT_TRUE(dynamic_churn().dynamic());
  sim::ChurnOptions partial;
  partial.initial_fraction = 0.5;
  EXPECT_TRUE(partial.dynamic());
}

TEST(ChurnModel, TraceIsDeterministicPerSeed) {
  sim::ChurnModel a(dynamic_churn(), 12, core::Rng(9));
  sim::ChurnModel b(dynamic_churn(), 12, core::Rng(9));
  for (std::size_t round = 0; round < 20; ++round) {
    const sim::ChurnEvents ea = a.begin_round(round);
    const sim::ChurnEvents eb = b.begin_round(round);
    EXPECT_EQ(ea.joined, eb.joined) << "round " << round;
    EXPECT_EQ(ea.left, eb.left) << "round " << round;
    EXPECT_EQ(a.present_clients(), b.present_clients());
  }
}

TEST(ChurnModel, AtLeastOneClientAlwaysPresent) {
  sim::ChurnOptions churn;
  churn.leave_prob = 1.0;  // everyone tries to leave every round
  sim::ChurnModel model(churn, 8, core::Rng(3));
  for (std::size_t round = 0; round < 10; ++round) {
    model.begin_round(round);
    EXPECT_GE(model.present_count(), 1u) << "round " << round;
  }
}

TEST(ChurnModel, RoundsMustBeConsumedInOrder) {
  sim::ChurnModel model(dynamic_churn(), 6, core::Rng(4));
  model.begin_round(0);
  EXPECT_THROW(model.begin_round(0), std::logic_error);  // replay
  EXPECT_THROW(model.begin_round(5), std::logic_error);  // skip
  EXPECT_NO_THROW(model.begin_round(1));
  EXPECT_EQ(model.next_round(), 2u);
}

TEST(ChurnModel, LatenessIsBoundedStatelessAndDeterministic) {
  sim::ChurnOptions churn = dynamic_churn();
  churn.min_staleness = 1;
  churn.max_staleness = 3;
  const sim::ChurnModel a(churn, 6, core::Rng(7));
  const sim::ChurnModel b(churn, 6, core::Rng(7));
  for (std::size_t round = 0; round < 6; ++round) {
    for (std::size_t client = 0; client < 6; ++client) {
      const std::size_t lateness = a.lateness(round, client);
      EXPECT_GE(lateness, churn.min_staleness);
      EXPECT_LE(lateness, churn.max_staleness);
      // Stateless: repeated and cross-instance queries agree.
      EXPECT_EQ(lateness, a.lateness(round, client));
      EXPECT_EQ(lateness, b.lateness(round, client));
    }
  }
}

TEST(ChurnModel, SaveLoadResumesTheTraceExactly) {
  sim::ChurnModel reference(dynamic_churn(), 10, core::Rng(11));
  sim::ChurnModel resumed(dynamic_churn(), 10, core::Rng(11));
  for (std::size_t round = 0; round < 4; ++round) {
    reference.begin_round(round);
    resumed.begin_round(round);
  }
  core::ByteWriter writer;
  resumed.save_state(writer);
  // Same rng as the original: a resumed run reconstructs the simulator from
  // the run seed, so the per-(round, client) draw streams line up; only the
  // membership + position come from the checkpoint.
  sim::ChurnModel restored(dynamic_churn(), 10, core::Rng(11));
  core::ByteReader reader(writer.buffer());
  restored.load_state(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(restored.next_round(), 4u);
  EXPECT_EQ(restored.present_clients(), reference.present_clients());
  for (std::size_t round = 4; round < 12; ++round) {
    const sim::ChurnEvents expected = reference.begin_round(round);
    const sim::ChurnEvents actual = restored.begin_round(round);
    EXPECT_EQ(expected.joined, actual.joined) << "round " << round;
    EXPECT_EQ(expected.left, actual.left) << "round " << round;
  }
}

TEST(ChurnModel, LoadRejectsClientCountMismatch) {
  sim::ChurnModel model(dynamic_churn(), 10, core::Rng(1));
  core::ByteWriter writer;
  model.save_state(writer);
  sim::ChurnModel other(dynamic_churn(), 4, core::Rng(1));
  core::ByteReader reader(writer.buffer());
  EXPECT_THROW(other.load_state(reader), std::runtime_error);
}

// ---- StaleUpdateBuffer ----

StaleUpdate make_update(std::size_t client, std::size_t origin, std::size_t due,
                        float fill) {
  StaleUpdate update;
  update.client_id = client;
  update.origin_round = origin;
  update.due_round = due;
  core::Tensor t(core::Shape{{2, 2}});
  t.fill(fill);
  update.state.push_back(t);
  update.scalars = {static_cast<double>(origin)};
  return update;
}

TEST(StaleBuffer, TakeDueFiltersAndSortsCanonically) {
  StaleUpdateBuffer buffer(StalenessOptions{});
  buffer.push(make_update(3, 1, 2, 0.f));
  buffer.push(make_update(1, 1, 2, 0.f));
  buffer.push(make_update(2, 0, 2, 0.f));
  buffer.push(make_update(0, 1, 5, 0.f));  // not due yet
  const std::vector<StaleUpdate> due = buffer.take_due(2);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].origin_round, 0u);  // oldest origin first...
  EXPECT_EQ(due[0].client_id, 2u);
  EXPECT_EQ(due[1].client_id, 1u);     // ...then client id within an origin
  EXPECT_EQ(due[2].client_id, 3u);
  EXPECT_EQ(buffer.size(), 1u);        // the round-5 entry stays parked
  EXPECT_TRUE(buffer.take_due(4).empty());
  EXPECT_EQ(buffer.take_due(5).size(), 1u);
}

TEST(StaleBuffer, CapacityEvictsOldestOriginFirst) {
  StalenessOptions options;
  options.buffer_capacity = 2;
  StaleUpdateBuffer buffer(options);
  buffer.push(make_update(0, 0, 9, 0.f));
  buffer.push(make_update(1, 1, 9, 0.f));
  buffer.push(make_update(2, 2, 9, 0.f));
  EXPECT_EQ(buffer.take_due(0).size(), 0u);  // capacity applied here
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.evicted_total(), 1u);
  const std::vector<StaleUpdate> due = buffer.take_due(9);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].client_id, 1u);  // client 0 (origin 0) was the eviction
  EXPECT_EQ(due[1].client_id, 2u);
}

TEST(StaleBuffer, SaveLoadRoundTripIsByteStable) {
  StalenessOptions options;
  options.alpha = 0.5;
  StaleUpdateBuffer original(options);
  original.push(make_update(4, 2, 5, 1.25f));
  original.push(make_update(1, 3, 4, -0.5f));
  core::ByteWriter first;
  original.save_state(first);

  StaleUpdateBuffer restored(options);
  core::ByteReader reader(first.buffer());
  restored.load_state(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(restored.size(), original.size());
  core::ByteWriter second;
  restored.save_state(second);
  EXPECT_EQ(first.buffer(), second.buffer());

  // The restored entries are the same tensors, not just the same count.
  const std::vector<StaleUpdate> due = restored.take_due(5);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].client_id, 4u);
  EXPECT_FLOAT_EQ(due[0].state.at(0).data()[0], 1.25f);
  EXPECT_EQ(due[1].client_id, 1u);
  EXPECT_FLOAT_EQ(due[1].state.at(0).data()[0], -0.5f);
}

TEST(StaleBuffer, WeightUsesConfiguredAlpha) {
  StalenessOptions options;
  options.alpha = 2.0;
  const StaleUpdateBuffer buffer(options);
  EXPECT_DOUBLE_EQ(buffer.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(buffer.weight(1), 0.25);
}

// ---- Run-level properties ----

TEST(StalenessRuns, StalenessWithoutSimulatorThrows) {
  Federation fed(small_federation());
  FedAvg algorithm(mlp_spec(), local_config());
  RunOptions run;
  run.rounds = 1;
  run.staleness = StalenessOptions{};
  EXPECT_THROW(run_federated(fed, algorithm, run), std::invalid_argument);
}

template <typename MakeAlgorithm>
RunResult run_once(MakeAlgorithm&& make, const RunOptions& run, std::uint64_t seed = 53) {
  Federation fed(small_federation(seed));
  std::unique_ptr<Algorithm> algorithm = make();
  return run_federated(fed, *algorithm, run);
}

void expect_same_trajectory(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].accuracy, b.history[i].accuracy) << "round " << i;
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss) << "round " << i;
    EXPECT_EQ(a.history[i].round_bytes, b.history[i].round_bytes) << "round " << i;
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

// alpha -> inf: every buffered update's weight underflows to zero, so the
// staleness-aware run must reproduce the discard-stragglers run bitwise.
template <typename MakeAlgorithm>
void expect_huge_alpha_matches_discard(MakeAlgorithm&& make) {
  RunOptions run;
  run.rounds = 4;
  run.sample_ratio = 1.0;
  run.sim = straggler_sim();

  const RunResult discard = run_once(make, run);
  ASSERT_GT(discard.total_stragglers, 0u) << "deadline produced no stragglers";

  RunOptions buffered = run;
  buffered.staleness = StalenessOptions{.alpha = 1e9};
  const RunResult stale = run_once(make, buffered);
  EXPECT_EQ(stale.total_stale_applied, 0u);
  EXPECT_EQ(stale.total_stragglers, discard.total_stragglers);
  expect_same_trajectory(discard, stale);
}

TEST(StalenessRuns, FedAvgHugeAlphaMatchesDiscardExactly) {
  expect_huge_alpha_matches_discard(
      [] { return std::make_unique<FedAvg>(mlp_spec(), local_config()); });
}

TEST(StalenessRuns, FedKemfHugeAlphaMatchesDiscardExactly) {
  expect_huge_alpha_matches_discard([] {
    FedKemfOptions options;
    options.knowledge_spec = mlp_spec();
    options.distill_epochs = 1;
    return std::make_unique<FedKemf>(std::vector<models::ModelSpec>{mlp_spec()},
                                     local_config(), options);
  });
}

// Zero lateness: a "late" upload lands within its own round at full weight,
// which must be indistinguishable from never having had a deadline at all.
template <typename MakeAlgorithm>
void expect_zero_lateness_matches_ideal(MakeAlgorithm&& make) {
  RunOptions ideal;
  ideal.rounds = 4;
  ideal.sample_ratio = 1.0;
  ideal.sim = sim::SimOptions{};  // deadline = +inf: nobody straggles

  RunOptions instant = ideal;
  instant.sim->deadline_seconds = 0.2;
  instant.sim->churn.min_staleness = 0;
  instant.sim->churn.max_staleness = 0;
  instant.staleness = StalenessOptions{.alpha = 1.0};

  const RunResult reference = run_once(make, ideal);
  const RunResult folded = run_once(make, instant);
  ASSERT_GT(folded.total_stragglers, 0u) << "deadline produced no stragglers";
  expect_same_trajectory(reference, folded);
}

TEST(StalenessRuns, FedAvgZeroLatenessMatchesNoDeadlineExactly) {
  expect_zero_lateness_matches_ideal(
      [] { return std::make_unique<FedAvg>(mlp_spec(), local_config()); });
}

TEST(StalenessRuns, FedKemfZeroLatenessMatchesNoDeadlineExactly) {
  expect_zero_lateness_matches_ideal([] {
    FedKemfOptions options;
    options.knowledge_spec = mlp_spec();
    options.distill_epochs = 1;
    return std::make_unique<FedKemf>(std::vector<models::ModelSpec>{mlp_spec()},
                                     local_config(), options);
  });
}

TEST(StalenessRuns, LateUpdatesAreActuallyApplied) {
  RunOptions run;
  run.rounds = 5;
  run.sample_ratio = 1.0;
  run.sim = straggler_sim();
  run.staleness = StalenessOptions{.alpha = 0.5};
  const RunResult result = run_once(
      [] { return std::make_unique<FedAvg>(mlp_spec(), local_config()); }, run);
  EXPECT_GT(result.total_stragglers, 0u);
  EXPECT_GT(result.total_stale_applied, 0u);
  EXPECT_TRUE(std::isfinite(result.final_accuracy));
  for (const RoundRecord& record : result.history) {
    EXPECT_TRUE(record.staleness_tracked);
    EXPECT_TRUE(record.sim_tracked);
  }
}

// Every algorithm must survive a run with dynamic churn + staleness: joiners
// warm-start, leavers evict server-side state, late uploads fold in.
template <typename MakeAlgorithm>
void expect_churn_run_completes(MakeAlgorithm&& make) {
  RunOptions run;
  run.rounds = 4;
  run.sample_ratio = 1.0;
  run.sim = straggler_sim();
  run.sim->churn.initial_fraction = 0.8;
  run.sim->churn.leave_prob = 0.25;
  run.sim->churn.rejoin_prob = 0.5;
  run.sim->churn.join_prob = 0.5;
  run.sim->churn.departed_state_retention = 1;  // force evictions
  run.staleness = StalenessOptions{.alpha = 1.0};
  const RunResult result = run_once(make, run);
  EXPECT_EQ(result.rounds_completed, 4u);
  EXPECT_TRUE(std::isfinite(result.final_accuracy));
  EXPECT_GT(result.total_joined + result.total_left, 0u)
      << "churn trace produced no membership events";
  for (const RoundRecord& record : result.history) {
    EXPECT_TRUE(record.churn_tracked);
    EXPECT_LE(record.clients_sampled, small_federation().num_clients);
  }
}

TEST(ChurnRuns, FedAvgCompletesUnderChurn) {
  expect_churn_run_completes(
      [] { return std::make_unique<FedAvg>(mlp_spec(), local_config()); });
}

TEST(ChurnRuns, FedProxCompletesUnderChurn) {
  expect_churn_run_completes(
      [] { return std::make_unique<FedProx>(mlp_spec(), local_config(), 0.01); });
}

TEST(ChurnRuns, FedNovaCompletesUnderChurn) {
  expect_churn_run_completes(
      [] { return std::make_unique<FedNova>(mlp_spec(), local_config()); });
}

TEST(ChurnRuns, ScaffoldCompletesUnderChurn) {
  expect_churn_run_completes(
      [] { return std::make_unique<Scaffold>(mlp_spec(), local_config()); });
}

TEST(ChurnRuns, FedDfCompletesUnderChurn) {
  expect_churn_run_completes([] {
    FedDfOptions options;
    options.distill_epochs = 1;
    return std::make_unique<FedDf>(mlp_spec(), local_config(), options);
  });
}

TEST(ChurnRuns, FedMdCompletesUnderChurn) {
  expect_churn_run_completes([] {
    FedMdOptions options;
    options.server_student = mlp_spec();
    return std::make_unique<FedMd>(std::vector<models::ModelSpec>{mlp_spec()},
                                   local_config(), options);
  });
}

TEST(ChurnRuns, FedKemfCompletesUnderChurn) {
  expect_churn_run_completes([] {
    FedKemfOptions options;
    options.knowledge_spec = mlp_spec();
    options.distill_epochs = 1;
    return std::make_unique<FedKemf>(std::vector<models::ModelSpec>{mlp_spec()},
                                     local_config(), options);
  });
}

TEST(ChurnRuns, StaticChurnOptionsReproduceLegacyRunExactly) {
  // A sim with all-default churn must not change anything: the churn stream
  // is never consulted and the legacy selection path runs verbatim.
  RunOptions run;
  run.rounds = 3;
  run.sample_ratio = 0.5;
  run.sim = sim::SimOptions{};
  const auto make = [] { return std::make_unique<FedAvg>(mlp_spec(), local_config()); };
  const RunResult a = run_once(make, run);
  const RunResult b = run_once(make, run);
  expect_same_trajectory(a, b);
  for (const RoundRecord& record : a.history) {
    EXPECT_FALSE(record.churn_tracked);
    EXPECT_FALSE(record.staleness_tracked);
  }
}

}  // namespace
}  // namespace fedkemf::fl
