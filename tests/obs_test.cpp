// Observability primitives: metrics registry exactness under concurrency,
// snapshot JSON shape, trace span recording/nesting/export, and the phase
// accumulator the runner's telemetry rests on.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "test_json.hpp"

namespace fedkemf::obs {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  // The registry's core contract: relaxed atomic adds lose nothing.
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ReturnsTheSameInstrumentForTheSameName) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
  EXPECT_EQ(&registry.gauge("a"), &registry.gauge("a"));
  EXPECT_EQ(&registry.histogram("a"), &registry.histogram("a"));
}

TEST(MetricsRegistry, ResetZeroesButCachedReferencesSurvive) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  counter.add(5);
  gauge.set(2.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  counter.add(1);  // the cached reference still points at the live instrument
  EXPECT_EQ(registry.snapshot().counter("c"), 1u);
}

TEST(Histogram, BucketsPartitionObservations) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);    // bucket 0: <= 1
  histogram.observe(1.0);    // bucket 0 (upper bounds are inclusive)
  histogram.observe(5.0);    // bucket 1
  histogram.observe(50.0);   // bucket 2
  histogram.observe(500.0);  // overflow
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 556.5);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, ExponentialBoundsGrowGeometrically) {
  const std::vector<double> bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsSnapshot, JsonParsesAndCarriesValues) {
  MetricsRegistry registry;
  registry.counter("events.total").add(42);
  registry.gauge("queue.depth").set(3.0);
  registry.histogram("latency").observe(0.25);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("events.total"), 42u);
  EXPECT_EQ(snapshot.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauge("queue.depth"), 3.0);

  const auto doc = testjson::parse(snapshot.to_json());
  ASSERT_TRUE(doc.has_value()) << snapshot.to_json();
  const testjson::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_at("events.total"), 42.0);
  const testjson::Value* histograms = doc->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const testjson::Value* latency = histograms->find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->number_at("count"), 1.0);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    trace_reset();
  }
  void TearDown() override {
    set_trace_enabled(false);
    trace_reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    TraceSpan span("test.disabled");
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, EnabledSpansRecordOnePerScope) {
  set_trace_enabled(true);
  {
    TraceSpan outer("test.outer");
    TraceSpan inner("test.inner");
  }
  EXPECT_EQ(trace_event_count(), 2u);
  trace_reset();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, SpanAliveAcrossDisableStillRecords) {
  // The documented transition rule: a span records iff it *started* enabled.
  set_trace_enabled(true);
  {
    TraceSpan span("test.transition");
    set_trace_enabled(false);
  }
  EXPECT_EQ(trace_event_count(), 1u);
}

TEST_F(TraceTest, ExportIsWellFormedAndNested) {
  set_trace_enabled(true);
  {
    TraceSpan outer("test.export_outer");
    {
      TraceSpan inner("test.export_inner");
    }
  }
  const std::filesystem::path path = temp_path("fedkemf_obs_test_trace.json");
  ASSERT_TRUE(trace_export(path.string()));

  const auto doc = testjson::parse(read_file(path));
  ASSERT_TRUE(doc.has_value());
  const testjson::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array->size(), 2u);

  const testjson::Value* outer = nullptr;
  const testjson::Value* inner = nullptr;
  for (const testjson::Value& event : *events->array) {
    EXPECT_EQ(event.string_at("ph"), "X");
    EXPECT_TRUE(event.find("ts") != nullptr && event.find("dur") != nullptr &&
                event.find("pid") != nullptr && event.find("tid") != nullptr);
    if (event.string_at("name") == "test.export_outer") outer = &event;
    if (event.string_at("name") == "test.export_inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span nests inside the outer one on the time axis.
  const double outer_start = outer->number_at("ts");
  const double outer_end = outer_start + outer->number_at("dur");
  const double inner_start = inner->number_at("ts");
  const double inner_end = inner_start + inner->number_at("dur");
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
  std::filesystem::remove(path);
}

TEST(PhaseAccumulator, ConcurrentAddsSumAcrossThreads) {
  PhaseAccumulator accumulator;
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&accumulator] {
      for (int i = 0; i < kPerThread; ++i) accumulator.add(Phase::kLocalTrain, 0.001);
    });
  }
  for (std::thread& worker : workers) worker.join();
  accumulator.add(Phase::kEval, 2.0);
  const PhaseSeconds snapshot = accumulator.snapshot();
  EXPECT_NEAR(snapshot.local_train, kThreads * kPerThread * 0.001, 1e-6);
  EXPECT_DOUBLE_EQ(snapshot.eval, 2.0);
  EXPECT_NEAR(snapshot.sum(), snapshot.local_train + 2.0, 1e-9);
  EXPECT_NEAR(snapshot.compute_sum(), snapshot.local_train, 1e-9);
  accumulator.reset();
  EXPECT_DOUBLE_EQ(accumulator.snapshot().sum(), 0.0);
}

TEST(ScopedPhaseTimer, ChargesElapsedTimeToItsPhase) {
  PhaseAccumulator accumulator;
  {
    ScopedPhaseTimer timer(accumulator, Phase::kFuse);
  }
  const PhaseSeconds snapshot = accumulator.snapshot();
  EXPECT_GE(snapshot.fuse, 0.0);
  EXPECT_LT(snapshot.fuse, 1.0);  // an empty scope cannot take a second
  EXPECT_DOUBLE_EQ(snapshot.local_train, 0.0);
}

TEST(Phase, NamesAreStable) {
  EXPECT_STREQ(to_string(Phase::kLocalTrain), "local_train");
  EXPECT_STREQ(to_string(Phase::kEval), "eval");
}

}  // namespace
}  // namespace fedkemf::obs
