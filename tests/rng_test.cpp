// Unit + statistical property tests for the deterministic RNG.

#include "core/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fedkemf::core {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42);
  Rng b(43);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::uint64_t all_or = 0;
  for (int i = 0; i < 100; ++i) all_or |= rng.next_u64();
  EXPECT_NE(all_or, 0u);
}

TEST(Rng, ForkIsIndependentOfParentPosition) {
  Rng parent1(7);
  Rng parent2(7);
  parent2.next_u64();  // advance parent2 only
  Rng child1 = parent1.fork(3);
  Rng child2 = parent2.fork(3);
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForkedStreamsDecorrelated) {
  Rng parent(7);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NearbyTagsProduceDistinctStreams) {
  // Client ids are small consecutive integers; forks must not collide.
  Rng parent(1);
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t tag = 0; tag < 100; ++tag) {
    first_draws.insert(parent.fork(tag).next_u64());
  }
  EXPECT_EQ(first_draws.size(), 100u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(11);
  for (double shape : {0.1, 0.5, 1.0, 2.0, 7.5}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.1 + 0.02) << "shape=" << shape;
  }
}

TEST(Rng, GammaRejectsNonPositiveShape) {
  Rng rng(12);
  EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(-1.0), std::invalid_argument);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(13);
  for (double alpha : {0.05, 0.1, 1.0, 10.0}) {
    const auto p = rng.dirichlet(alpha, 10);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletSmallAlphaIsSkewed) {
  // alpha = 0.05 should concentrate nearly all mass on few categories.
  Rng rng(14);
  double max_total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.dirichlet(0.05, 10);
    max_total += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_total / trials, 0.7);
}

TEST(Rng, DirichletLargeAlphaIsFlat) {
  Rng rng(15);
  double max_total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.dirichlet(100.0, 10);
    max_total += *std::max_element(p.begin(), p.end());
  }
  EXPECT_LT(max_total / trials, 0.15);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(16);
  const auto perm = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 257u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(18);
  const auto sample = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(19);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

// Parameterized sweep: the fork tree must be reproducible at any depth.
class RngForkDepth : public ::testing::TestWithParam<int> {};

TEST_P(RngForkDepth, DeepForksReproducible) {
  const int depth = GetParam();
  auto make = [&] {
    Rng rng(99);
    for (int d = 0; d < depth; ++d) rng = rng.fork(static_cast<std::uint64_t>(d) * 31 + 1);
    return rng;
  };
  Rng a = make();
  Rng b = make();
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

INSTANTIATE_TEST_SUITE_P(Depths, RngForkDepth, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace fedkemf::core
