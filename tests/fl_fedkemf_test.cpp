// FedKEMF-specific tests: ensemble strategies (Eq. 5), deep mutual learning
// (Algorithm 1), server distillation (Algorithm 2), heterogeneous model
// pools, and communication properties.

#include <cmath>

#include <gtest/gtest.h>

#include "fl/defense/robust_ensemble.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "core/tensor_ops.hpp"
#include "nn/loss.hpp"

namespace fedkemf::fl {
namespace {

using core::Rng;
using core::Shape;
using core::Tensor;

FederationOptions tiny_federation() {
  FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.data.noise_stddev = 0.5;
  options.train_samples = 160;
  options.test_samples = 64;
  options.server_pool_samples = 48;
  options.num_clients = 4;
  options.dirichlet_alpha = 0.5;
  options.seed = 21;
  return options;
}

models::ModelSpec tiny_spec(const char* arch = "mlp") {
  return models::ModelSpec{.arch = arch, .num_classes = 4, .in_channels = 3,
                           .image_size = 8, .width_multiplier = 0.25};
}

LocalTrainConfig tiny_local() {
  LocalTrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  return config;
}

FedKemfOptions tiny_kemf(const char* knowledge_arch = "mlp") {
  FedKemfOptions options;
  options.knowledge_spec = tiny_spec(knowledge_arch);
  options.distill_epochs = 1;
  options.distill_batch_size = 16;
  return options;
}

// ---- ensemble_logits (Eq. 5 + ablation strategies) ----

TEST(EnsembleLogits, MaxIsElementwiseMaxima) {
  const float a_v[] = {1, 5, 2, 0};
  const float b_v[] = {3, 1, 2, 4};
  Tensor a = Tensor::from_values(Shape::matrix(2, 2), a_v);
  Tensor b = Tensor::from_values(Shape::matrix(2, 2), b_v);
  const Tensor members[] = {a, b};
  Tensor out = ensemble_logits(EnsembleStrategy::kMaxLogits, members);
  EXPECT_EQ(out.at2(0, 0), 3.0f);
  EXPECT_EQ(out.at2(0, 1), 5.0f);
  EXPECT_EQ(out.at2(1, 0), 2.0f);
  EXPECT_EQ(out.at2(1, 1), 4.0f);
}

TEST(EnsembleLogits, AvgIsElementwiseMean) {
  const float a_v[] = {1, 3};
  const float b_v[] = {3, 5};
  Tensor a = Tensor::from_values(Shape::matrix(1, 2), a_v);
  Tensor b = Tensor::from_values(Shape::matrix(1, 2), b_v);
  const Tensor members[] = {a, b};
  Tensor out = ensemble_logits(EnsembleStrategy::kAvgLogits, members);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 4.0f);
}

TEST(EnsembleLogits, VoteProducesLogProbabilityHistogram) {
  const float a_v[] = {9, 0, 0};
  const float b_v[] = {8, 1, 0};
  const float c_v[] = {0, 7, 0};
  Tensor a = Tensor::from_values(Shape::matrix(1, 3), a_v);
  Tensor b = Tensor::from_values(Shape::matrix(1, 3), b_v);
  Tensor c = Tensor::from_values(Shape::matrix(1, 3), c_v);
  const Tensor members[] = {a, b, c};
  Tensor out = ensemble_logits(EnsembleStrategy::kMajorityVote, members);
  // Class 0 got 2 votes, class 1 got 1, class 2 got 0: strict ordering in
  // the log-space teacher.
  EXPECT_GT(out.at2(0, 0), out.at2(0, 1));
  EXPECT_GT(out.at2(0, 1), out.at2(0, 2));
  // Values behave like log-probabilities: exp sums to ~1.
  double total = 0.0;
  for (std::size_t cidx = 0; cidx < 3; ++cidx) total += std::exp(out.at2(0, cidx));
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(EnsembleLogits, SingleMemberIsIdentityForMaxAndAvg) {
  Rng rng(1);
  Tensor a = Tensor::normal(Shape::matrix(3, 5), rng);
  const Tensor members[] = {a};
  for (EnsembleStrategy s : {EnsembleStrategy::kMaxLogits, EnsembleStrategy::kAvgLogits}) {
    Tensor out = ensemble_logits(s, members);
    for (std::size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(out[i], a[i]);
  }
}

TEST(EnsembleLogits, SingleMemberIsIdentityForRobustStrategies) {
  Rng rng(3);
  Tensor a = Tensor::normal(Shape::matrix(3, 5), rng);
  const Tensor members[] = {a};
  for (EnsembleStrategy s : {EnsembleStrategy::kTrimmedMean, EnsembleStrategy::kMedian}) {
    Tensor out = ensemble_logits(s, members);
    for (std::size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(out[i], a[i]);
  }
}

TEST(EnsembleLogits, TrimmedMeanDropsExtremesPerCoordinate) {
  // Column values per cell: {1, 2, 3, 4, 100}; trimming 1 each side (5
  // members at the default 0.3 fraction trims ceil(1.5)=2, so use 0.2 here)
  // leaves {2, 3, 4} -> mean 3.
  const float v0[] = {1.0f};
  const float v1[] = {2.0f};
  const float v2[] = {3.0f};
  const float v3[] = {4.0f};
  const float v4[] = {100.0f};
  const Tensor members[] = {Tensor::from_values(Shape::matrix(1, 1), v0),
                            Tensor::from_values(Shape::matrix(1, 1), v1),
                            Tensor::from_values(Shape::matrix(1, 1), v2),
                            Tensor::from_values(Shape::matrix(1, 1), v3),
                            Tensor::from_values(Shape::matrix(1, 1), v4)};
  EXPECT_FLOAT_EQ(trimmed_mean_logits(members, 0.2).data()[0], 3.0f);
  EXPECT_THROW(trimmed_mean_logits(members, 0.5), std::invalid_argument);
  EXPECT_THROW(trimmed_mean_logits(members, -0.1), std::invalid_argument);
}

TEST(EnsembleLogits, MedianIsCoordinateWise) {
  const float v0[] = {1.0f, 10.0f};
  const float v1[] = {5.0f, -10.0f};
  const float v2[] = {3.0f, 0.0f};
  const Tensor odd[] = {Tensor::from_values(Shape::matrix(1, 2), v0),
                        Tensor::from_values(Shape::matrix(1, 2), v1),
                        Tensor::from_values(Shape::matrix(1, 2), v2)};
  const Tensor med_odd = ensemble_logits(EnsembleStrategy::kMedian, odd);
  EXPECT_FLOAT_EQ(med_odd.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(med_odd.data()[1], 0.0f);
  // Even member count averages the two middle values.
  const Tensor even[] = {odd[0], odd[1]};
  const Tensor med_even = ensemble_logits(EnsembleStrategy::kMedian, even);
  EXPECT_FLOAT_EQ(med_even.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(med_even.data()[1], 0.0f);
}

TEST(EnsembleLogits, MinorityOfPoisonedMembersCannotMoveRobustFusion) {
  // 2 of 5 members emit hostile +/-1000 logits; the fused teacher must equal
  // the honest consensus exactly under both robust strategies.
  Rng rng(5);
  Tensor honest = Tensor::normal(Shape::matrix(4, 3), rng);
  Tensor high = honest.clone();
  Tensor low = honest.clone();
  for (std::size_t i = 0; i < high.numel(); ++i) {
    high.data()[i] = 1000.0f;
    low.data()[i] = -1000.0f;
  }
  const Tensor members[] = {low, honest, honest, honest, high};
  for (EnsembleStrategy s : {EnsembleStrategy::kTrimmedMean, EnsembleStrategy::kMedian}) {
    const Tensor fused = ensemble_logits(s, members);
    for (std::size_t i = 0; i < honest.numel(); ++i) {
      ASSERT_EQ(fused[i], honest[i]) << to_string(s) << " cell " << i;
    }
  }
}

TEST(EnsembleLogits, MajorityVoteTieBreaksDeterministically) {
  // Two members, two classes, opposite votes: a perfect tie.  The histogram
  // teacher must give both classes identical mass, and repeated fusion must
  // be bit-identical (no hidden randomness in tie handling).
  const float a_v[] = {5.0f, 0.0f};
  const float b_v[] = {0.0f, 5.0f};
  Tensor a = Tensor::from_values(Shape::matrix(1, 2), a_v);
  Tensor b = Tensor::from_values(Shape::matrix(1, 2), b_v);
  const Tensor members[] = {a, b};
  const Tensor first = ensemble_logits(EnsembleStrategy::kMajorityVote, members);
  const Tensor second = ensemble_logits(EnsembleStrategy::kMajorityVote, members);
  EXPECT_FLOAT_EQ(first.at2(0, 0), first.at2(0, 1));
  for (std::size_t i = 0; i < first.numel(); ++i) ASSERT_EQ(first[i], second[i]);
}

TEST(EnsembleLogits, Validation) {
  EXPECT_THROW(ensemble_logits(EnsembleStrategy::kMaxLogits, {}), std::invalid_argument);
  Tensor a = Tensor::zeros(Shape::matrix(1, 2));
  Tensor b = Tensor::zeros(Shape::matrix(1, 3));
  const Tensor members[] = {a, b};
  EXPECT_THROW(ensemble_logits(EnsembleStrategy::kMaxLogits, members),
               std::invalid_argument);
}

TEST(EnsembleLogits, EnsembleOfSpecialistsBeatsEachMember) {
  // Two "specialists": one confident/correct on class 0 rows, the other on
  // class 1 rows. Max-fusion should dominate both individuals.
  const std::size_t rows = 40;
  Tensor a(Shape::matrix(rows, 2));
  Tensor b(Shape::matrix(rows, 2));
  std::vector<std::size_t> labels(rows);
  Rng rng(2);
  for (std::size_t r = 0; r < rows; ++r) {
    labels[r] = r % 2;
    // Specialist A knows class 0: strong correct logit there, noise elsewhere.
    a.data()[r * 2 + 0] = labels[r] == 0 ? 5.0f : static_cast<float>(rng.normal());
    a.data()[r * 2 + 1] = static_cast<float>(rng.normal());
    b.data()[r * 2 + 1] = labels[r] == 1 ? 5.0f : static_cast<float>(rng.normal());
    b.data()[r * 2 + 0] = static_cast<float>(rng.normal());
  }
  const Tensor members[] = {a, b};
  Tensor fused = ensemble_logits(EnsembleStrategy::kMaxLogits, members);
  const double acc_a = nn::accuracy(a, labels);
  const double acc_b = nn::accuracy(b, labels);
  const double acc_fused = nn::accuracy(fused, labels);
  EXPECT_GT(acc_fused, acc_a);
  EXPECT_GT(acc_fused, acc_b);
  EXPECT_GT(acc_fused, 0.9);
}

// ---- deep_mutual_update (Algorithm 1) ----

TEST(DeepMutualUpdate, BothNetworksLearn) {
  Federation fed(tiny_federation());
  Rng rng(3);
  auto local = models::build_model(tiny_spec(), rng);
  auto knowledge = models::build_model(tiny_spec(), rng);
  LocalTrainConfig config = tiny_local();
  config.epochs = 6;
  const DmlResult first = deep_mutual_update(*local, *knowledge, fed.train_set(),
                                             fed.client_shard(0), config, 1.0f, Rng(4));
  const DmlResult second = deep_mutual_update(*local, *knowledge, fed.train_set(),
                                              fed.client_shard(0), config, 1.0f, Rng(5));
  EXPECT_LT(second.mean_local_loss, first.mean_local_loss);
  EXPECT_LT(second.mean_knowledge_loss, first.mean_knowledge_loss);
  EXPECT_GT(first.steps, 0u);
}

TEST(DeepMutualUpdate, PullsNetworksTogether) {
  // After DML, the two networks' predictions should agree more than two
  // independently trained ones.
  Federation fed(tiny_federation());
  Rng rng(6);
  auto local = models::build_model(tiny_spec(), rng);
  auto knowledge = models::build_model(tiny_spec(), rng);
  LocalTrainConfig config = tiny_local();
  config.epochs = 8;

  auto agreement = [&](nn::Module& m1, nn::Module& m2) {
    m1.set_training(false);
    m2.set_training(false);
    std::vector<std::size_t> all(fed.test_set().size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    Tensor images = fed.test_set().gather_images(all);
    Tensor l1 = m1.forward(images);
    Tensor l2 = m2.forward(images);
    std::vector<std::size_t> p1(all.size());
    std::vector<std::size_t> p2(all.size());
    core::argmax_rows(l1, p1.data());
    core::argmax_rows(l2, p2.data());
    std::size_t same = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (p1[i] == p2[i]) ++same;
    }
    return static_cast<double>(same) / static_cast<double>(all.size());
  };

  deep_mutual_update(*local, *knowledge, fed.train_set(), fed.client_shard(0), config,
                     /*kl_weight=*/2.0f, Rng(7));
  const double dml_agreement = agreement(*local, *knowledge);

  // Independent supervised training of two fresh models, no KL coupling.
  Rng rng2(8);
  auto solo1 = models::build_model(tiny_spec(), rng2);
  auto solo2 = models::build_model(tiny_spec(), rng2);
  supervised_local_update(*solo1, fed.train_set(), fed.client_shard(0), config, Rng(9));
  supervised_local_update(*solo2, fed.train_set(), fed.client_shard(0), config, Rng(10));
  const double solo_agreement = agreement(*solo1, *solo2);
  EXPECT_GE(dml_agreement, solo_agreement);
}

TEST(DeepMutualUpdate, WorksAcrossHeterogeneousArchitectures) {
  // Local model resnet20, knowledge net mlp: DML only couples logits, so any
  // pair of architectures must compose.
  Federation fed(tiny_federation());
  Rng rng(11);
  auto local = models::build_model(tiny_spec("resnet20"), rng);
  auto knowledge = models::build_model(tiny_spec("mlp"), rng);
  const DmlResult result = deep_mutual_update(*local, *knowledge, fed.train_set(),
                                              fed.client_shard(1), tiny_local(), 1.0f,
                                              Rng(12));
  EXPECT_GT(result.steps, 0u);
  EXPECT_TRUE(std::isfinite(result.mean_local_loss));
}

// ---- FedKemf end-to-end ----

TEST(FedKemf, OnlyKnowledgeNetworkCrossesTheWire) {
  // Clients train a *bigger* model locally; the metered traffic must match
  // the knowledge net's wire size, not the local model's.
  Federation fed(tiny_federation());
  FedKemfOptions options = tiny_kemf("mlp");
  FedKemf algorithm({tiny_spec("resnet20")}, tiny_local(), options);
  RunOptions run;
  run.rounds = 2;
  run.sample_ratio = 0.5;
  run_federated(fed, algorithm, run);

  Rng rng(13);
  auto knowledge = models::build_model(options.knowledge_spec, rng);
  const std::size_t expected_per_transfer = comm::model_wire_size(*knowledge);
  for (const auto& record : fed.meter().records()) {
    EXPECT_EQ(record.bytes, expected_per_transfer);
    EXPECT_EQ(record.payload, "knowledge_net");
  }
  // 2 rounds x 2 sampled clients x 2 directions.
  EXPECT_EQ(fed.meter().num_transfers(), 8u);
}

TEST(FedKemf, HeterogeneousPoolAssignsRoundRobin) {
  FedKemfOptions options = tiny_kemf();
  FedKemf algorithm({tiny_spec("resnet20"), tiny_spec("resnet32"), tiny_spec("mlp")},
                    tiny_local(), options);
  EXPECT_EQ(algorithm.client_spec(0).arch, "resnet20");
  EXPECT_EQ(algorithm.client_spec(1).arch, "resnet32");
  EXPECT_EQ(algorithm.client_spec(2).arch, "mlp");
  EXPECT_EQ(algorithm.client_spec(3).arch, "resnet20");
}

TEST(FedKemf, MultiModelFederationRunsAndEvaluatesClients) {
  Federation fed(tiny_federation());
  FedKemfOptions options = tiny_kemf();
  FedKemf algorithm({tiny_spec("mlp"), tiny_spec("resnet20")}, tiny_local(), options);
  RunOptions run;
  run.rounds = 3;
  run.sample_ratio = 1.0;
  run.evaluate_client_models = true;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_EQ(result.rounds_completed, 3u);
  EXPECT_FALSE(std::isnan(result.history.back().client_accuracy));
  EXPECT_GT(result.history.back().client_accuracy, 0.0);
}

TEST(FedKemf, ClientModelPersistsAcrossRounds) {
  Federation fed(tiny_federation());
  FedKemfOptions options = tiny_kemf();
  FedKemf algorithm({tiny_spec()}, tiny_local(), options);
  RunOptions run;
  run.rounds = 1;
  run.sample_ratio = 1.0;
  run_federated(fed, algorithm, run);
  nn::Module* before = algorithm.client_model(0);
  ASSERT_NE(before, nullptr);
  ASSERT_NE(before, &algorithm.global_model());  // private local model exists
  utils::ThreadPool pool(0);
  const std::size_t sampled_arr[] = {0, 1, 2, 3};
  algorithm.round(1, sampled_arr, pool);
  EXPECT_EQ(algorithm.client_model(0), before);  // same instance, kept learning
}

TEST(FedKemf, UnsampledClientFallsBackToGlobalKnowledge) {
  Federation fed(tiny_federation());
  FedKemfOptions options = tiny_kemf();
  FedKemf algorithm({tiny_spec()}, tiny_local(), options);
  algorithm.setup(fed);
  EXPECT_EQ(algorithm.client_model(2), &algorithm.global_model());
}

TEST(FedKemf, WeightAverageFusionModeRuns) {
  Federation fed(tiny_federation());
  FedKemfOptions options = tiny_kemf();
  options.fuse_by_weight_average = true;
  FedKemf algorithm({tiny_spec()}, tiny_local(), options);
  RunOptions run;
  run.rounds = 4;
  run.sample_ratio = 1.0;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_GT(result.best_accuracy, 0.25);
}

class FedKemfEnsembles : public ::testing::TestWithParam<EnsembleStrategy> {};

TEST_P(FedKemfEnsembles, AllStrategiesTrainAboveChance) {
  Federation fed(tiny_federation());
  FedKemfOptions options = tiny_kemf();
  options.ensemble = GetParam();
  options.distill_epochs = 2;
  LocalTrainConfig local = tiny_local();
  local.epochs = 2;
  FedKemf algorithm({tiny_spec()}, local, options);
  RunOptions run;
  run.rounds = 6;
  run.sample_ratio = 1.0;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_GT(result.best_accuracy, 0.3) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Strategies, FedKemfEnsembles,
                         ::testing::Values(EnsembleStrategy::kMaxLogits,
                                           EnsembleStrategy::kAvgLogits,
                                           EnsembleStrategy::kMajorityVote));

TEST(FedKemf, RejectsEmptyArchPool) {
  EXPECT_THROW(FedKemf({}, tiny_local(), tiny_kemf()), std::invalid_argument);
}

}  // namespace
}  // namespace fedkemf::fl
