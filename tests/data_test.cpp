// Data substrate tests: dataset container, synthetic generator statistics,
// partitioners (IID / Dirichlet / shards), and the dataloader.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/dataloader.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace fedkemf::data {
namespace {

using core::Rng;
using core::Shape;
using core::Tensor;

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.seed = 5;
  return spec;
}

TEST(Dataset, ValidatesConstruction) {
  Tensor images = Tensor::zeros(Shape::nchw(4, 1, 2, 2));
  EXPECT_THROW(Dataset(images, {0, 1, 2}, 3), std::invalid_argument);   // count mismatch
  EXPECT_THROW(Dataset(images, {0, 1, 2, 5}, 3), std::invalid_argument); // label range
  EXPECT_THROW(Dataset(images, {0, 0, 0, 0}, 1), std::invalid_argument); // classes < 2
  EXPECT_THROW(Dataset(Tensor::zeros(Shape::matrix(4, 4)), {0, 0, 0, 0}, 2),
               std::invalid_argument);  // not NCHW
}

TEST(Dataset, GatherCopiesSelectedSamples) {
  Tensor images(Shape::nchw(3, 1, 1, 2));
  for (std::size_t i = 0; i < images.numel(); ++i) images[i] = static_cast<float>(i);
  Dataset ds(images, {0, 1, 0}, 2);
  Tensor out;
  std::vector<std::size_t> labels;
  const std::size_t idx[] = {2, 0};
  ds.gather(idx, out, labels);
  EXPECT_EQ(out.shape(), Shape::nchw(2, 1, 1, 2));
  EXPECT_EQ(out[0], 4.0f);  // sample 2 starts at flat index 4
  EXPECT_EQ(out[2], 0.0f);  // sample 0
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
}

TEST(Dataset, GatherRejectsOutOfRange) {
  Dataset ds(Tensor::zeros(Shape::nchw(2, 1, 1, 1)), {0, 1}, 2);
  const std::size_t idx[] = {5};
  Tensor out;
  std::vector<std::size_t> labels;
  EXPECT_THROW(ds.gather(idx, out, labels), std::out_of_range);
}

TEST(Dataset, ClassHistogram) {
  Dataset ds(Tensor::zeros(Shape::nchw(5, 1, 1, 1)), {0, 1, 1, 2, 1}, 3);
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 1u);
  const std::vector<std::size_t> subset = {1, 2};
  const auto sub = ds.class_histogram(subset);
  EXPECT_EQ(sub[1], 2u);
}

TEST(Synthetic, DeterministicGeneration) {
  const SyntheticSpec spec = small_spec();
  const Dataset a = make_synthetic_dataset(spec, 40, kTrainSplit);
  const Dataset b = make_synthetic_dataset(spec, 40, kTrainSplit);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.images().numel(); ++i) {
    ASSERT_EQ(a.images()[i], b.images()[i]);
  }
}

TEST(Synthetic, SplitsAreDisjointDraws) {
  const SyntheticSpec spec = small_spec();
  const Dataset train = make_synthetic_dataset(spec, 40, kTrainSplit);
  const Dataset test = make_synthetic_dataset(spec, 40, kTestSplit);
  // Same distribution, different noise draws: pixel values must differ.
  std::size_t identical = 0;
  for (std::size_t i = 0; i < train.images().numel(); ++i) {
    if (train.images()[i] == test.images()[i]) ++identical;
  }
  EXPECT_LT(identical, train.images().numel() / 100);
}

TEST(Synthetic, LabelsAreBalanced) {
  const SyntheticSpec spec = small_spec();
  const Dataset ds = make_synthetic_dataset(spec, 40, kTrainSplit);
  const auto hist = ds.class_histogram();
  for (std::size_t count : hist) EXPECT_EQ(count, 10u);
}

TEST(Synthetic, SameClassSamplesCorrelateMoreThanCrossClass) {
  // The class structure must be real: mean intra-class pixel correlation
  // should exceed inter-class correlation.
  SyntheticSpec spec = small_spec();
  spec.noise_stddev = 0.4;
  spec.jitter = 0;  // pure prototype + noise for this statistical check
  const Dataset ds = make_synthetic_dataset(spec, 80, kTrainSplit);
  const std::size_t numel = spec.image_size * spec.image_size;
  auto dot_normalized = [&](std::size_t i, std::size_t j) {
    const float* a = ds.images().data() + i * numel;
    const float* b = ds.images().data() + j * numel;
    double ab = 0.0;
    double aa = 0.0;
    double bb = 0.0;
    for (std::size_t k = 0; k < numel; ++k) {
      ab += static_cast<double>(a[k]) * b[k];
      aa += static_cast<double>(a[k]) * a[k];
      bb += static_cast<double>(b[k]) * b[k];
    }
    return ab / std::sqrt(aa * bb);
  };
  double intra = 0.0;
  double inter = 0.0;
  std::size_t intra_n = 0;
  std::size_t inter_n = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = i + 1; j < 40; ++j) {
      if (ds.label(i) == ds.label(j)) {
        intra += dot_normalized(i, j);
        ++intra_n;
      } else {
        inter += dot_normalized(i, j);
        ++inter_n;
      }
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.1);
}

TEST(Synthetic, NoiseKnobControlsDifficulty) {
  SyntheticSpec easy = small_spec();
  easy.noise_stddev = 0.1;
  SyntheticSpec hard = small_spec();
  hard.noise_stddev = 3.0;
  // Higher noise -> higher pixel variance.
  const Dataset e = make_synthetic_dataset(easy, 20, kTrainSplit);
  const Dataset h = make_synthetic_dataset(hard, 20, kTrainSplit);
  auto variance = [](const Dataset& ds) {
    double mean = ds.images().mean();
    double total = 0.0;
    for (std::size_t i = 0; i < ds.images().numel(); ++i) {
      const double d = ds.images()[i] - mean;
      total += d * d;
    }
    return total / static_cast<double>(ds.images().numel());
  };
  EXPECT_GT(variance(h), variance(e) * 2.0);
}

TEST(Synthetic, UnlabeledPoolMatchesGeometry) {
  const SyntheticSpec spec = small_spec();
  Tensor pool = make_unlabeled_pool(spec, 30, kServerSplit);
  EXPECT_EQ(pool.shape(), Shape::nchw(30, 1, 8, 8));
  EXPECT_TRUE(pool.all_finite());
}

TEST(Synthetic, ValidatesSpec) {
  SyntheticSpec bad = small_spec();
  bad.num_classes = 1;
  EXPECT_THROW(make_synthetic_dataset(bad, 10, kTrainSplit), std::invalid_argument);
  bad = small_spec();
  bad.jitter = bad.image_size;
  EXPECT_THROW(make_synthetic_dataset(bad, 10, kTrainSplit), std::invalid_argument);
  EXPECT_THROW(make_synthetic_dataset(small_spec(), 0, kTrainSplit), std::invalid_argument);
}

// ---- Partitioners ----

std::vector<std::size_t> make_labels(std::size_t n, std::size_t classes) {
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % classes;
  return labels;
}

void expect_exact_cover(const Partition& partition, std::size_t n) {
  std::vector<bool> seen(n, false);
  for (const auto& shard : partition) {
    for (std::size_t idx : shard) {
      ASSERT_LT(idx, n);
      ASSERT_FALSE(seen[idx]) << "index " << idx << " assigned twice";
      seen[idx] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_TRUE(seen[i]) << "index " << i << " unassigned";
}

TEST(Partition, IidCoversAllSamplesEvenly) {
  Rng rng(1);
  const auto partition = partition_iid(100, 7, rng);
  expect_exact_cover(partition, 100);
  for (const auto& shard : partition) {
    EXPECT_GE(shard.size(), 14u);
    EXPECT_LE(shard.size(), 15u);
  }
}

class DirichletAlpha : public ::testing::TestWithParam<double> {};

TEST_P(DirichletAlpha, ExactCoverAndMinimumGuarantee) {
  const double alpha = GetParam();
  Rng rng(2);
  const auto labels = make_labels(400, 10);
  const auto partition = partition_dirichlet(labels, 10, 8, alpha, rng, 3);
  expect_exact_cover(partition, 400);
  for (const auto& shard : partition) EXPECT_GE(shard.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletAlpha, ::testing::Values(0.05, 0.1, 0.5, 1.0, 100.0));

TEST(Partition, DirichletSkewDecreasesWithAlpha) {
  Rng rng1(3);
  Rng rng2(3);
  const auto labels = make_labels(1000, 10);
  const auto skewed = partition_dirichlet(labels, 10, 10, 0.05, rng1);
  const auto flat = partition_dirichlet(labels, 10, 10, 100.0, rng2);
  const auto skewed_stats = summarize_partition(skewed, labels, 10);
  const auto flat_stats = summarize_partition(flat, labels, 10);
  // alpha=0.05 -> each client sees few labels; alpha=100 -> nearly all.
  EXPECT_LT(skewed_stats.mean_labels_per_client, 6.0);
  EXPECT_GT(flat_stats.mean_labels_per_client, 9.0);
}

TEST(Partition, DirichletIsDeterministicGivenRng) {
  const auto labels = make_labels(300, 5);
  Rng rng1(4);
  Rng rng2(4);
  const auto a = partition_dirichlet(labels, 5, 6, 0.1, rng1);
  const auto b = partition_dirichlet(labels, 5, 6, 0.1, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) EXPECT_EQ(a[c], b[c]);
}

TEST(Partition, DirichletValidation) {
  Rng rng(5);
  const auto labels = make_labels(100, 5);
  EXPECT_THROW(partition_dirichlet(labels, 5, 0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(partition_dirichlet(labels, 5, 8, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(partition_dirichlet(labels, 5, 200, 0.1, rng), std::invalid_argument);
}

TEST(Partition, ShardsProducePathologicalSkew) {
  Rng rng(6);
  const auto labels = make_labels(400, 10);
  const auto partition = partition_shards(labels, 10, 2, rng);
  expect_exact_cover(partition, 400);
  const auto stats = summarize_partition(partition, labels, 10);
  // Two shards per client -> at most ~3 distinct labels each.
  EXPECT_LE(stats.mean_labels_per_client, 4.0);
}

TEST(Partition, SummaryStatistics) {
  Partition partition = {{0, 1, 2}, {3}, {4, 5}};
  const std::vector<std::size_t> labels = {0, 0, 1, 1, 2, 2};
  const auto stats = summarize_partition(partition, labels, 3);
  EXPECT_EQ(stats.min_size, 1u);
  EXPECT_EQ(stats.max_size, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_size, 2.0);
  EXPECT_NEAR(stats.mean_labels_per_client, (2.0 + 1.0 + 1.0) / 3.0, 1e-9);
}

// ---- DataLoader ----

TEST(DataLoader, CoversEverySampleOncePerEpoch) {
  const Dataset ds = make_synthetic_dataset(small_spec(), 25, kTrainSplit);
  DataLoader loader(ds, 4, /*shuffle=*/true, Rng(7));
  EXPECT_EQ(loader.num_batches(), 7u);
  Batch batch;
  std::size_t total = 0;
  std::size_t batches = 0;
  while (loader.next(batch)) {
    total += batch.size();
    ++batches;
    EXPECT_LE(batch.size(), 4u);
  }
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(batches, 7u);
}

TEST(DataLoader, ShuffleChangesOrderAcrossEpochs) {
  const Dataset ds = make_synthetic_dataset(small_spec(), 32, kTrainSplit);
  DataLoader loader(ds, 32, /*shuffle=*/true, Rng(8));
  Batch first;
  loader.next(first);
  loader.reset();
  Batch second;
  loader.next(second);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    if (first.labels[i] != second.labels[i]) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(DataLoader, NoShuffleIsSequential) {
  const Dataset ds = make_synthetic_dataset(small_spec(), 8, kTrainSplit);
  DataLoader loader(ds, 3, /*shuffle=*/false, Rng(9));
  Batch batch;
  loader.next(batch);
  EXPECT_EQ(batch.labels[0], ds.label(0));
  EXPECT_EQ(batch.labels[2], ds.label(2));
}

TEST(DataLoader, SameSeedSameBatches) {
  const Dataset ds = make_synthetic_dataset(small_spec(), 20, kTrainSplit);
  DataLoader a(ds, 4, true, Rng(10));
  DataLoader b(ds, 4, true, Rng(10));
  Batch ba;
  Batch bb;
  while (a.next(ba)) {
    ASSERT_TRUE(b.next(bb));
    ASSERT_EQ(ba.labels, bb.labels);
  }
  EXPECT_FALSE(b.next(bb));
}

TEST(DataLoader, SubsetLoaderRestrictsToIndices) {
  const Dataset ds = make_synthetic_dataset(small_spec(), 20, kTrainSplit);
  std::vector<std::size_t> subset = {0, 4, 8};  // all label 0 (round-robin labels)
  DataLoader loader(ds, std::move(subset), 2, true, Rng(11));
  Batch batch;
  std::size_t total = 0;
  while (loader.next(batch)) {
    for (std::size_t label : batch.labels) EXPECT_EQ(label, 0u);
    total += batch.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(DataLoader, Validation) {
  const Dataset ds = make_synthetic_dataset(small_spec(), 10, kTrainSplit);
  EXPECT_THROW(DataLoader(ds, 0, false, Rng(0)), std::invalid_argument);
  EXPECT_THROW(DataLoader(ds, {}, 2, false, Rng(0)), std::invalid_argument);
  EXPECT_THROW(DataLoader(ds, {99}, 2, false, Rng(0)), std::out_of_range);
}

}  // namespace
}  // namespace fedkemf::data
