// Communication substrate tests: model wire format round trips (versions 1
// and 2), CRC32 integrity, byte-exact accounting, traffic metering, thread
// safety, fault-hook retry behavior, and the link cost model.

#include <cmath>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "comm/channel.hpp"
#include "comm/compression.hpp"
#include "core/rng.hpp"
#include "models/zoo.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "utils/thread_pool.hpp"

namespace fedkemf::comm {
namespace {

using core::Rng;
using core::Shape;
using core::Tensor;

std::unique_ptr<nn::Module> small_model(std::uint64_t seed) {
  Rng rng(seed);
  return models::build_model(
      models::ModelSpec{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                        .image_size = 8, .width_multiplier = 0.25},
      rng);
}

TEST(ModelSerialize, RoundTripPreservesForwardPass) {
  auto src = small_model(1);
  auto dst = small_model(2);  // different weights initially
  Rng rng(3);
  Tensor x = Tensor::normal(Shape::nchw(2, 3, 8, 8), rng);
  src->set_training(false);
  dst->set_training(false);
  Tensor before_src = src->forward(x);
  Tensor before_dst = dst->forward(x);
  bool differed = false;
  for (std::size_t i = 0; i < before_src.numel(); ++i) {
    if (before_src[i] != before_dst[i]) differed = true;
  }
  ASSERT_TRUE(differed);

  const auto payload = serialize_model(*src);
  deserialize_model(payload, *dst);
  Tensor after_dst = dst->forward(x);
  for (std::size_t i = 0; i < before_src.numel(); ++i) {
    ASSERT_EQ(after_dst[i], before_src[i]);  // bit-identical, buffers included
  }
}

TEST(ModelSerialize, WireSizeMatchesPayload) {
  auto model = small_model(4);
  const auto payload = serialize_model(*model);
  EXPECT_EQ(payload.size(), model_wire_size(*model));
}

TEST(ModelSerialize, WireSizeTracksParameterCount) {
  // Payload must be ~4 bytes per state scalar plus small headers.
  auto model = small_model(5);
  const std::size_t scalars = nn::state_numel(*model);
  const std::size_t bytes = model_wire_size(*model);
  EXPECT_GT(bytes, scalars * 4);
  EXPECT_LT(bytes, scalars * 4 + scalars);  // generous header allowance
}

TEST(ModelSerialize, RejectsWrongArchitecture) {
  auto src = small_model(6);
  Rng rng(7);
  nn::Sequential other;
  other.emplace<nn::Linear>(4, 2, rng);
  const auto payload = serialize_model(*src);
  EXPECT_THROW(deserialize_model(payload, other), std::invalid_argument);
}

TEST(ModelSerialize, RejectsCorruptMagic) {
  auto model = small_model(8);
  auto payload = serialize_model(*model);
  payload[0] ^= 0xFF;
  EXPECT_THROW(deserialize_model(payload, *model), std::runtime_error);
}

TEST(ModelSerialize, RejectsTrailingGarbage) {
  auto model = small_model(9);
  auto payload = serialize_model(*model);
  payload.push_back(0);
  EXPECT_THROW(deserialize_model(payload, *model), std::runtime_error);
}

TEST(ModelSerialize, DetectsBodyCorruptionViaChecksum) {
  auto src = small_model(20);
  auto dst = small_model(21);
  auto payload = serialize_model(*src);
  payload[payload.size() / 2] ^= 0x10;  // flip one bit deep in the body
  EXPECT_THROW(deserialize_model(payload, *dst), ChecksumError);
}

TEST(ModelSerialize, DetectsChecksumFieldCorruption) {
  auto src = small_model(22);
  auto dst = small_model(23);
  auto payload = serialize_model(*src);
  payload[9] ^= 0x01;  // the crc32 field itself (bytes 8..11)
  EXPECT_THROW(deserialize_model(payload, *dst), ChecksumError);
}

TEST(ModelSerialize, ChecksumErrorMessageNamesOffsetAndValues) {
  auto src = small_model(24);
  auto payload = serialize_model(*src);
  payload.back() ^= 0xFF;
  try {
    deserialize_model(payload, *src);
    FAIL() << "expected ChecksumError";
  } catch (const ChecksumError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_NE(what.find("expected"), std::string::npos) << what;
  }
}

TEST(ModelSerialize, LegacyVersion1PayloadStillReadable) {
  auto src = small_model(25);
  auto dst = small_model(26);
  auto v2 = serialize_model(*src);
  // A version-1 payload is the version-2 layout minus the crc32 field, with
  // the version field rewritten.
  std::vector<std::uint8_t> v1;
  v1.insert(v1.end(), v2.begin(), v2.begin() + 8);
  v1.insert(v1.end(), v2.begin() + 12, v2.end());
  v1[4] = 1;  // version (little-endian u32)
  v1[5] = v1[6] = v1[7] = 0;
  ASSERT_NO_THROW(deserialize_model(v1, *dst));
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = 0; j < ps[i]->value.numel(); ++j) {
      ASSERT_EQ(ps[i]->value[j], pd[i]->value[j]);
    }
  }
}

TEST(TrafficMeter, AccumulatesByDirectionRoundAndClient) {
  TrafficMeter meter;
  meter.record({0, 1, Direction::kDownlink, 100, "model"});
  meter.record({0, 2, Direction::kUplink, 200, "model"});
  meter.record({1, 1, Direction::kUplink, 50, "tau"});
  EXPECT_EQ(meter.total_bytes(), 350u);
  EXPECT_EQ(meter.downlink_bytes(), 100u);
  EXPECT_EQ(meter.uplink_bytes(), 250u);
  EXPECT_EQ(meter.bytes_for_round(0), 300u);
  EXPECT_EQ(meter.bytes_for_round(1), 50u);
  EXPECT_EQ(meter.bytes_for_client(1), 150u);
  EXPECT_EQ(meter.num_transfers(), 3u);
  EXPECT_DOUBLE_EQ(meter.mean_bytes_per_round(), 175.0);
}

TEST(TrafficMeter, ResetClears) {
  TrafficMeter meter;
  meter.record({0, 0, Direction::kUplink, 10, "x"});
  meter.reset();
  EXPECT_EQ(meter.total_bytes(), 0u);
  EXPECT_EQ(meter.num_transfers(), 0u);
  EXPECT_DOUBLE_EQ(meter.mean_bytes_per_round(), 0.0);
}

TEST(TrafficMeter, ConcurrentRecordingFromThreadPool) {
  // The round loop meters transfers from worker threads; drive record() from
  // the same pool abstraction the algorithms use and check per-(round,
  // client) attribution survives the contention.
  TrafficMeter meter;
  utils::ThreadPool pool(4);
  constexpr std::size_t kClients = 16;
  constexpr std::size_t kPerClient = 200;
  pool.parallel_for(kClients, [&meter](std::size_t client) {
    for (std::size_t i = 0; i < kPerClient; ++i) {
      meter.record({/*round=*/i % 2, client, Direction::kUplink, client + 1, "m"});
    }
  });
  EXPECT_EQ(meter.num_transfers(), kClients * kPerClient);
  std::size_t expected_total = 0;
  for (std::size_t client = 0; client < kClients; ++client) {
    expected_total += kPerClient * (client + 1);
    EXPECT_EQ(meter.bytes_for_client(client), kPerClient * (client + 1));
    EXPECT_EQ(meter.bytes_for(0, client), (kPerClient / 2) * (client + 1));
  }
  EXPECT_EQ(meter.total_bytes(), expected_total);
}

TEST(TrafficMeter, ThreadSafeRecording) {
  TrafficMeter meter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&meter, t] {
      for (int i = 0; i < 500; ++i) {
        meter.record({static_cast<std::size_t>(t), 0, Direction::kUplink, 1, "x"});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(meter.total_bytes(), 4000u);
}

TEST(Channel, TransferMovesStateAndMeters) {
  TrafficMeter meter;
  Channel channel(&meter);
  auto src = small_model(10);
  auto dst = small_model(11);
  const std::size_t bytes =
      channel.transfer(*src, *dst, /*round=*/3, /*client=*/7, Direction::kDownlink, "kn");
  EXPECT_EQ(bytes, model_wire_size(*src));
  EXPECT_EQ(meter.total_bytes(), bytes);
  const auto records = meter.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].round, 3u);
  EXPECT_EQ(records[0].client_id, 7u);
  EXPECT_EQ(records[0].payload, "kn");
  // Destination now matches source.
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = 0; j < ps[i]->value.numel(); ++j) {
      ASSERT_EQ(ps[i]->value[j], pd[i]->value[j]);
    }
  }
}

TEST(Channel, RawTransfersMeterWithoutMarshalling) {
  TrafficMeter meter;
  Channel channel(&meter);
  EXPECT_EQ(channel.transfer_raw(1234, 0, 0, Direction::kUplink, "control"), 1234u);
  EXPECT_EQ(meter.uplink_bytes(), 1234u);
}

TEST(Channel, NullMeterIsAllowed) {
  Channel channel(nullptr);
  auto src = small_model(12);
  auto dst = small_model(13);
  EXPECT_GT(channel.transfer(*src, *dst, 0, 0, Direction::kDownlink, "m"), 0u);
}

TEST(LinkModel, TransferTimeIsLatencyPlusSerialization) {
  LinkModel link{.bandwidth_bytes_per_second = 1000.0, .latency_seconds = 0.5};
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0), 0.5);
  EXPECT_DOUBLE_EQ(link.transfer_seconds(2000), 2.5);
}

TEST(LinkModel, ZeroBytesCostsExactlyTheLatency) {
  LinkModel link{.bandwidth_bytes_per_second = 123.0, .latency_seconds = 0.0};
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0), 0.0);
}

TEST(LinkModel, HugePayloadsStayFiniteAndMonotonic) {
  LinkModel link;  // WAN defaults
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  const double t_huge = link.transfer_seconds(huge);
  EXPECT_TRUE(std::isfinite(t_huge));
  EXPECT_GT(t_huge, link.transfer_seconds(huge / 2));
  // A terabyte at 2.5 MB/s is ~4.6 days; sanity-check the magnitude.
  const double t_tb = link.transfer_seconds(std::size_t{1} << 40);
  EXPECT_NEAR(t_tb, static_cast<double>(std::size_t{1} << 40) / (20e6 / 8.0), 1.0);
}

// ---- Fault hook / retry behavior ----

/// Deterministic scripted hook: applies a fixed list of actions, one per
/// attempt, then delivers.  Counts calls.
class ScriptedFaultHook final : public FaultHook {
 public:
  explicit ScriptedFaultHook(std::vector<Action> script) : script_(std::move(script)) {}

  Action on_payload(std::size_t, std::size_t, Direction, std::size_t,
                    std::vector<std::uint8_t>& payload) override {
    const std::size_t call = calls_++;
    const Action action =
        call < script_.size() ? script_[call] : Action::kDeliver;
    if (action == Action::kCorrupt && !payload.empty()) payload[payload.size() / 2] ^= 0x40;
    return action;
  }

  std::size_t calls() const { return calls_; }

 private:
  std::vector<Action> script_;
  std::size_t calls_ = 0;
};

TEST(ChannelFaults, CorruptedAttemptIsDetectedAndRetried) {
  TrafficMeter meter;
  Channel channel(&meter);
  ScriptedFaultHook hook({FaultHook::Action::kCorrupt});
  channel.set_fault_hook(&hook);
  channel.set_retry_policy({.max_attempts = 3});
  auto src = small_model(30);
  auto dst = small_model(31);
  ASSERT_NO_THROW(channel.transfer(*src, *dst, 0, 0, Direction::kDownlink, "model"));
  EXPECT_EQ(hook.calls(), 2u);  // corrupt, then clean retry
  EXPECT_EQ(meter.num_transfers(), 2u);  // both attempts consumed the link
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t j = 0; j < ps[0]->value.numel(); ++j) {
    ASSERT_EQ(ps[0]->value[j], pd[0]->value[j]);
  }
}

TEST(ChannelFaults, DroppedAttemptsAreRetriedPerPolicy) {
  TrafficMeter meter;
  Channel channel(&meter);
  ScriptedFaultHook hook({FaultHook::Action::kDrop, FaultHook::Action::kDrop});
  channel.set_fault_hook(&hook);
  channel.set_retry_policy({.max_attempts = 3});
  auto src = small_model(32);
  auto dst = small_model(33);
  ASSERT_NO_THROW(channel.transfer(*src, *dst, 1, 2, Direction::kUplink, "model"));
  EXPECT_EQ(hook.calls(), 3u);
  EXPECT_EQ(meter.bytes_for(1, 2), 3 * model_wire_size(*src));
}

TEST(ChannelFaults, ExhaustedRetriesThrowTransferFailed) {
  Channel channel(nullptr);
  ScriptedFaultHook hook({FaultHook::Action::kDrop, FaultHook::Action::kDrop,
                          FaultHook::Action::kDrop});
  channel.set_fault_hook(&hook);
  channel.set_retry_policy({.max_attempts = 3});
  auto src = small_model(34);
  auto dst = small_model(35);
  EXPECT_THROW(channel.transfer(*src, *dst, 0, 0, Direction::kUplink, "model"),
               TransferFailed);
  EXPECT_EQ(hook.calls(), 3u);
}

TEST(ChannelFaults, CompressedTransfersAreAlsoProtected) {
  Channel channel(nullptr);
  ScriptedFaultHook hook({FaultHook::Action::kCorrupt, FaultHook::Action::kCorrupt});
  channel.set_fault_hook(&hook);
  channel.set_retry_policy({.max_attempts = 3});
  auto src = small_model(36);
  auto dst = small_model(37);
  ASSERT_NO_THROW(channel.transfer_compressed(*src, *dst, 0, 0, Direction::kDownlink,
                                              "kn", Codec::kFp16));
  EXPECT_EQ(hook.calls(), 3u);
}

TEST(ChannelFaults, NoHookMeansSingleAttemptSemantics) {
  TrafficMeter meter;
  Channel channel(&meter);
  channel.set_retry_policy({.max_attempts = 5});  // irrelevant without a hook
  auto src = small_model(38);
  auto dst = small_model(39);
  channel.transfer(*src, *dst, 0, 0, Direction::kDownlink, "model");
  EXPECT_EQ(meter.num_transfers(), 1u);
}

TEST(RetryBackoff, ExponentialClosedFormWithoutJitter) {
  RetryPolicy policy{.max_attempts = 5, .backoff_seconds = 0.05, .backoff_multiplier = 2.0};
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(policy, 0), 0.0);
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(policy, 1), 0.05);
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(policy, 3), 0.05 + 0.10 + 0.20);
  // The seed is inert without jitter: the schedule stays deterministic.
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(policy, 3, 7),
                   retry_backoff_seconds(policy, 3, 99));
}

TEST(RetryBackoff, DecorrelatedJitterIsDeterministicPerSeed) {
  RetryPolicy policy{.max_attempts = 5,
                     .backoff_seconds = 0.05,
                     .backoff_multiplier = 2.0,
                     .decorrelated_jitter = true,
                     .max_backoff_seconds = 1.0};
  for (std::size_t failures = 0; failures <= 4; ++failures) {
    EXPECT_DOUBLE_EQ(retry_backoff_seconds(policy, failures, 42),
                     retry_backoff_seconds(policy, failures, 42))
        << "failures=" << failures;
  }
}

TEST(RetryBackoff, DifferentSeedsDecorrelate) {
  RetryPolicy policy{.backoff_seconds = 0.05,
                     .decorrelated_jitter = true,
                     .max_backoff_seconds = 5.0};
  // At least one pair of seeds must diverge (the whole point of the jitter:
  // clients that failed in the same fault window stop retrying in lockstep).
  bool any_different = false;
  const double first = retry_backoff_seconds(policy, 3, 0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    if (retry_backoff_seconds(policy, 3, seed) != first) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryBackoff, JitteredWaitsRespectBaseAndCap) {
  RetryPolicy policy{.backoff_seconds = 0.05,
                     .decorrelated_jitter = true,
                     .max_backoff_seconds = 0.3};
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    for (std::size_t failures = 1; failures <= 6; ++failures) {
      const double total = retry_backoff_seconds(policy, failures, seed);
      EXPECT_GE(total, policy.backoff_seconds * static_cast<double>(failures));
      EXPECT_LE(total, policy.max_backoff_seconds * static_cast<double>(failures));
    }
  }
}

TEST(PaperByteAccounting, FullWidthModelsMatchPaperMagnitudes) {
  // Table 1's per-round-per-client figures (down+up) for full-width models:
  // ResNet-20 about 2.1 MB, ResNet-32 about 3.6 MB, VGG-11 tens of MB.
  auto size_of = [](const char* arch) {
    Rng rng(0);
    auto model = models::build_model(
        models::ModelSpec{.arch = arch, .num_classes = 10, .in_channels = 3,
                          .image_size = 32, .width_multiplier = 1.0},
        rng);
    return static_cast<double>(model_wire_size(*model)) / (1024.0 * 1024.0);
  };
  const double r20 = 2 * size_of("resnet20");
  const double r32 = 2 * size_of("resnet32");
  const double vgg = 2 * size_of("vgg11");
  EXPECT_NEAR(r20, 2.1, 0.3);
  EXPECT_NEAR(r32, 3.6, 0.4);
  EXPECT_GT(vgg, 30.0);
  // The knowledge-network saving the paper reports: VGG-11 / ResNet-20 ~ 20x+.
  EXPECT_GT(vgg / r20, 20.0);
}

}  // namespace
}  // namespace fedkemf::comm
