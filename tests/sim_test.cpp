// Network-realism subsystem tests: per-client profiles, availability traces,
// deterministic fault injection, the simulated round clock, and the
// end-to-end acceptance properties — corrupted payloads are rejected and
// retried, FedKEMF tolerates 30% dropout, and fault schedules are identical
// across thread-pool sizes.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "comm/channel.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "models/zoo.hpp"
#include "sim/simulator.hpp"

namespace fedkemf::sim {
namespace {

using core::Rng;

constexpr double kInf = std::numeric_limits<double>::infinity();

models::ModelSpec tiny_spec(const char* arch = "mlp") {
  return models::ModelSpec{.arch = arch, .num_classes = 4, .in_channels = 3,
                           .image_size = 8, .width_multiplier = 0.25};
}

std::unique_ptr<nn::Module> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  return models::build_model(tiny_spec(), rng);
}

fl::FederationOptions tiny_federation(std::uint64_t seed = 21) {
  fl::FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.data.noise_stddev = 0.5;
  options.train_samples = 160;
  options.test_samples = 64;
  options.server_pool_samples = 48;
  options.num_clients = 4;
  options.dirichlet_alpha = 0.5;
  options.seed = seed;
  return options;
}

fl::LocalTrainConfig tiny_local() {
  fl::LocalTrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  return config;
}

// ---- stream_tag ----

TEST(StreamTag, DistinguishesPartsAndOrder) {
  EXPECT_NE(stream_tag({1, 2}), stream_tag({2, 1}));
  EXPECT_NE(stream_tag({1, 2}), stream_tag({1, 3}));
  EXPECT_NE(stream_tag({1}), stream_tag({1, 0}));
  EXPECT_EQ(stream_tag({7, 8, 9}), stream_tag({7, 8, 9}));
}

// ---- NetworkModel ----

TEST(NetworkModel, ProfilesRespectConfiguredRanges) {
  NetworkOptions options;
  options.bandwidth_min_bps = 1e5;
  options.bandwidth_max_bps = 1e7;
  options.latency_min_seconds = 0.01;
  options.latency_max_seconds = 0.2;
  options.flops_min = 1e8;
  options.flops_max = 1e11;
  NetworkModel net(options, 64, Rng(5));
  ASSERT_EQ(net.num_clients(), 64u);
  double bw_lo = kInf, bw_hi = 0.0;
  for (std::size_t id = 0; id < 64; ++id) {
    const ClientProfile& p = net.profile(id);
    EXPECT_GE(p.link.bandwidth_bytes_per_second, options.bandwidth_min_bps);
    EXPECT_LE(p.link.bandwidth_bytes_per_second, options.bandwidth_max_bps);
    EXPECT_GE(p.link.latency_seconds, options.latency_min_seconds);
    EXPECT_LE(p.link.latency_seconds, options.latency_max_seconds);
    EXPECT_GE(p.flops_per_second, options.flops_min);
    EXPECT_LE(p.flops_per_second, options.flops_max);
    bw_lo = std::min(bw_lo, p.link.bandwidth_bytes_per_second);
    bw_hi = std::max(bw_hi, p.link.bandwidth_bytes_per_second);
  }
  EXPECT_GT(bw_hi / bw_lo, 5.0);  // heterogeneous, not collapsed to one value
}

TEST(NetworkModel, SameSeedSameProfilesAndTraces) {
  NetworkOptions options;
  options.dropout_prob = 0.4;
  options.mid_round_failure_prob = 0.2;
  NetworkModel a(options, 16, Rng(9));
  NetworkModel b(options, 16, Rng(9));
  for (std::size_t id = 0; id < 16; ++id) {
    EXPECT_DOUBLE_EQ(a.profile(id).link.bandwidth_bytes_per_second,
                     b.profile(id).link.bandwidth_bytes_per_second);
    for (std::size_t round = 0; round < 8; ++round) {
      EXPECT_EQ(a.available(round, id), b.available(round, id));
      EXPECT_EQ(a.fails_mid_round(round, id), b.fails_mid_round(round, id));
    }
  }
}

TEST(NetworkModel, DropoutRateMatchesProbability) {
  NetworkOptions options;
  options.dropout_prob = 0.3;
  NetworkModel net(options, 50, Rng(11));
  std::size_t offline = 0;
  const std::size_t trials = 50 * 40;
  for (std::size_t round = 0; round < 40; ++round) {
    for (std::size_t id = 0; id < 50; ++id) {
      if (!net.available(round, id)) ++offline;
    }
  }
  const double rate = static_cast<double>(offline) / static_cast<double>(trials);
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(NetworkModel, ZeroProbabilitiesNeverDrop) {
  NetworkModel net(NetworkOptions{}, 8, Rng(3));
  for (std::size_t round = 0; round < 10; ++round) {
    for (std::size_t id = 0; id < 8; ++id) {
      EXPECT_TRUE(net.available(round, id));
      EXPECT_FALSE(net.fails_mid_round(round, id));
    }
  }
}

TEST(NetworkModel, RejectsInvalidOptions) {
  NetworkOptions bad_range;
  bad_range.bandwidth_min_bps = 100.0;
  bad_range.bandwidth_max_bps = 10.0;
  EXPECT_THROW(NetworkModel(bad_range, 4, Rng(0)), std::invalid_argument);
  NetworkOptions bad_prob;
  bad_prob.dropout_prob = 1.5;
  EXPECT_THROW(NetworkModel(bad_prob, 4, Rng(0)), std::invalid_argument);
}

// ---- FaultInjector ----

TEST(FaultInjector, DeterministicPerAttemptDecisions) {
  FaultSpec spec;
  spec.drop_prob = 0.3;
  spec.corrupt_prob = 0.3;
  FaultInjector a(spec, Rng(7));
  FaultInjector b(spec, Rng(7));
  std::vector<std::uint8_t> pa(64, 0x55), pb(64, 0x55);
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t client = 0; client < 4; ++client) {
      for (std::size_t attempt = 0; attempt < 3; ++attempt) {
        pa.assign(64, 0x55);
        pb.assign(64, 0x55);
        const auto action_a =
            a.on_payload(round, client, comm::Direction::kUplink, attempt, pa);
        const auto action_b =
            b.on_payload(round, client, comm::Direction::kUplink, attempt, pb);
        EXPECT_EQ(action_a, action_b);
        EXPECT_EQ(pa, pb);  // identical corruption, bit for bit
      }
    }
  }
}

TEST(FaultInjector, CorruptMutatesPayloadAndTallies) {
  FaultSpec spec;
  spec.corrupt_prob = 1.0;
  spec.corrupt_bit_flips = 4;
  FaultInjector injector(spec, Rng(13));
  std::vector<std::uint8_t> payload(128, 0);
  const auto action =
      injector.on_payload(2, 5, comm::Direction::kDownlink, 0, payload);
  EXPECT_EQ(action, comm::FaultHook::Action::kCorrupt);
  std::size_t flipped_bits = 0;
  for (std::uint8_t byte : payload) {
    for (int bit = 0; bit < 8; ++bit) flipped_bits += (byte >> bit) & 1;
  }
  EXPECT_GE(flipped_bits, 1u);
  EXPECT_LE(flipped_bits, 4u);  // flips may collide on the same bit
  const auto stats = injector.stats(2, 5);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.corruptions, 1u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(injector.stats(0, 0).attempts, 0u);  // untouched pair
}

TEST(FaultInjector, RejectsInvalidSpec) {
  FaultSpec over;
  over.drop_prob = 0.7;
  over.corrupt_prob = 0.7;
  EXPECT_THROW(FaultInjector(over, Rng(0)), std::invalid_argument);
  FaultSpec negative_delay;
  negative_delay.max_delay_seconds = -1.0;
  EXPECT_THROW(FaultInjector(negative_delay, Rng(0)), std::invalid_argument);
}

// ---- RoundClock ----

TEST(RoundClock, NoDeadlineLastsAsLongAsSlowestClient) {
  RoundClock clock(kInf);
  clock.begin_round(0, 3);
  EXPECT_TRUE(clock.record_completion(1.0, 0.5));
  EXPECT_TRUE(clock.record_completion(2.0, 1.0));
  EXPECT_TRUE(clock.record_completion(0.1, 0.1));
  const RoundReport report = clock.report();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.stragglers, 0u);
  EXPECT_DOUBLE_EQ(report.simulated_seconds, 3.0);
}

TEST(RoundClock, DeadlineCutsOffStragglers) {
  RoundClock clock(2.0);
  clock.begin_round(4, 4);
  EXPECT_TRUE(clock.record_completion(1.0, 0.5));
  EXPECT_FALSE(clock.record_completion(1.5, 1.0));  // 2.5 > 2.0
  clock.record_offline();
  clock.record_failure();
  const RoundReport report = clock.report();
  EXPECT_EQ(report.round, 4u);
  EXPECT_EQ(report.sampled, 4u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.stragglers, 1u);
  EXPECT_EQ(report.offline, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.dropped(), 2u);
  // The round lasted its full deadline: the server waited for the missing.
  EXPECT_DOUBLE_EQ(report.simulated_seconds, 2.0);
}

TEST(RoundClock, BeginRoundResetsState) {
  RoundClock clock(1.0);
  clock.begin_round(0, 2);
  clock.record_offline();
  clock.begin_round(1, 2);
  const RoundReport report = clock.report();
  EXPECT_EQ(report.round, 1u);
  EXPECT_EQ(report.offline, 0u);
}

TEST(RoundClock, RejectsNonPositiveDeadline) {
  EXPECT_THROW(RoundClock(0.0), std::invalid_argument);
  EXPECT_THROW(RoundClock(-1.0), std::invalid_argument);
}

// ---- Simulator ----

TEST(Simulator, FaultFreeTransferTimeMatchesLinkFormula) {
  SimOptions options;  // no faults, no deadline
  Simulator simulator(options, 4, Rng(17));
  comm::TrafficMeter meter;
  comm::Channel channel(&meter);
  simulator.attach(channel);
  simulator.begin_round(0, 1);
  ASSERT_TRUE(simulator.begin_client(0, 2));
  auto src = tiny_model(1);
  auto dst = tiny_model(2);
  const std::size_t bytes =
      channel.transfer(*src, *dst, 0, 2, comm::Direction::kDownlink, "model");
  EXPECT_FALSE(simulator.mid_round_failure(0, 2));
  const double flops = 1e9;
  ASSERT_TRUE(simulator.finish_client(0, 2, flops));
  const ClientProfile& profile = simulator.network().profile(2);
  const double expected = flops / profile.flops_per_second +
                          static_cast<double>(bytes) /
                              profile.link.bandwidth_bytes_per_second +
                          profile.link.latency_seconds;  // one delivery attempt
  const RoundReport report = simulator.round_report();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_NEAR(report.simulated_seconds, expected, 1e-12);
  simulator.detach();
  EXPECT_EQ(channel.fault_hook(), nullptr);
}

// ---- Acceptance (a): corruption rejected via checksum, retried per policy ----

TEST(Acceptance, CorruptedPayloadRejectedWithChecksumError) {
  FaultSpec spec;
  spec.corrupt_prob = 1.0;
  FaultInjector injector(spec, Rng(23));
  auto src = tiny_model(3);
  auto payload = comm::serialize_model(*src);
  const auto action =
      injector.on_payload(0, 0, comm::Direction::kUplink, 0, payload);
  ASSERT_EQ(action, comm::FaultHook::Action::kCorrupt);
  EXPECT_THROW(comm::deserialize_model(payload, *src), comm::ChecksumError);
}

TEST(Acceptance, InjectedCorruptionIsRetriedPerPolicyThenFails) {
  FaultSpec spec;
  spec.corrupt_prob = 1.0;  // every attempt corrupted
  FaultInjector injector(spec, Rng(29));
  comm::Channel channel(nullptr);
  channel.set_fault_hook(&injector);
  channel.set_retry_policy({.max_attempts = 4});
  auto src = tiny_model(4);
  auto dst = tiny_model(5);
  EXPECT_THROW(
      channel.transfer(*src, *dst, 1, 3, comm::Direction::kUplink, "model"),
      comm::TransferFailed);
  const auto stats = injector.stats(1, 3);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.corruptions, 4u);
}

TEST(Acceptance, TransientCorruptionRecoversWithinBudget) {
  // 50% corruption: with 6 attempts the transfer should almost surely land;
  // the chosen seed makes it deterministic.
  FaultSpec spec;
  spec.corrupt_prob = 0.5;
  FaultInjector injector(spec, Rng(31));
  comm::TrafficMeter meter;
  comm::Channel channel(&meter);
  channel.set_fault_hook(&injector);
  channel.set_retry_policy({.max_attempts = 6});
  auto src = tiny_model(6);
  auto dst = tiny_model(7);
  ASSERT_NO_THROW(
      channel.transfer(*src, *dst, 0, 1, comm::Direction::kDownlink, "model"));
  const auto stats = injector.stats(0, 1);
  EXPECT_GE(stats.attempts, 1u);
  EXPECT_LE(stats.attempts, 6u);
  EXPECT_EQ(meter.num_transfers(), stats.attempts);  // every attempt metered
  // Delivered intact despite the in-flight corruption.
  const auto ps = src->parameters();
  const auto pd = dst->parameters();
  for (std::size_t j = 0; j < ps[0]->value.numel(); ++j) {
    ASSERT_EQ(ps[0]->value[j], pd[0]->value[j]);
  }
}

// ---- Acceptance (b): FedKEMF tolerates 30% dropout ----

TEST(Acceptance, FedKemfSurvives30PercentDropout) {
  fl::FedKemfOptions kemf_options;
  kemf_options.knowledge_spec = tiny_spec();
  kemf_options.distill_epochs = 1;
  kemf_options.distill_batch_size = 16;

  fl::RunOptions run;
  run.rounds = 8;
  run.sample_ratio = 1.0;
  run.eval_every = 1;

  fl::Federation clean_fed(tiny_federation());
  fl::FedKemf clean_algo({tiny_spec()}, tiny_local(), kemf_options);
  const fl::RunResult clean = run_federated(clean_fed, clean_algo, run);

  run.sim = SimOptions{};
  run.sim->network.dropout_prob = 0.3;
  fl::Federation lossy_fed(tiny_federation());
  fl::FedKemf lossy_algo({tiny_spec()}, tiny_local(), kemf_options);
  const fl::RunResult lossy = run_federated(lossy_fed, lossy_algo, run);

  // The run must complete every round even when entire cohorts vanish.
  EXPECT_EQ(lossy.rounds_completed, run.rounds);
  EXPECT_GT(lossy.total_dropped, 0u);
  EXPECT_GT(lossy.sim_seconds, 0.0);

  // Only survivors aggregate: each record's completed count reflects the
  // dropout trace, never exceeding the cohort.
  bool saw_partial_cohort = false;
  for (const fl::RoundRecord& record : lossy.history) {
    EXPECT_EQ(record.clients_completed + record.clients_dropped +
                  record.clients_straggled,
              record.clients_sampled);
    if (record.clients_completed < record.clients_sampled) saw_partial_cohort = true;
  }
  EXPECT_TRUE(saw_partial_cohort);

  // Within 5 accuracy points of the zero-dropout run.
  EXPECT_GE(lossy.best_accuracy, clean.best_accuracy - 0.05);
}

// ---- Acceptance (c): identical schedules at pool sizes 1 and 4 ----

TEST(Acceptance, FaultScheduleIndependentOfThreadPoolSize) {
  SimOptions sim;
  sim.network.dropout_prob = 0.25;
  sim.network.mid_round_failure_prob = 0.15;
  sim.faults.drop_prob = 0.1;
  sim.faults.corrupt_prob = 0.1;
  sim.faults.delay_prob = 0.5;
  sim.faults.max_delay_seconds = 0.2;
  sim.deadline_seconds = 1.0;

  auto run_with_threads = [&](std::size_t num_threads) {
    fl::Federation fed(tiny_federation(33));
    fl::FedAvg algorithm(tiny_spec(), tiny_local());
    fl::RunOptions run;
    run.rounds = 6;
    run.sample_ratio = 1.0;
    run.eval_every = 1;
    run.num_threads = num_threads;
    run.sim = sim;
    return run_federated(fed, algorithm, run);
  };

  const fl::RunResult serial = run_with_threads(0);   // inline, pool size 1
  const fl::RunResult parallel = run_with_threads(4);

  EXPECT_GT(serial.total_dropped, 0u);  // the schedule actually bites
  EXPECT_EQ(serial.total_dropped, parallel.total_dropped);
  EXPECT_EQ(serial.total_stragglers, parallel.total_stragglers);
  EXPECT_DOUBLE_EQ(serial.sim_seconds, parallel.sim_seconds);
  ASSERT_EQ(serial.history.size(), parallel.history.size());
  for (std::size_t i = 0; i < serial.history.size(); ++i) {
    const fl::RoundRecord& a = serial.history[i];
    const fl::RoundRecord& b = parallel.history[i];
    EXPECT_EQ(a.clients_completed, b.clients_completed) << "round " << i;
    EXPECT_EQ(a.clients_dropped, b.clients_dropped) << "round " << i;
    EXPECT_EQ(a.clients_straggled, b.clients_straggled) << "round " << i;
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds) << "round " << i;
    // Same survivors + order-independent aggregation => identical model.
    EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy) << "round " << i;
  }
}

}  // namespace
}  // namespace fedkemf::sim
