// Behaviour of the baseline FL algorithms: aggregation math, gradient hooks,
// communication accounting, and cross-algorithm invariants.

#include <cmath>

#include <gtest/gtest.h>

#include "fl/fedavg.hpp"
#include "fl/fednova.hpp"
#include "fl/fedprox.hpp"
#include "fl/runner.hpp"
#include "fl/scaffold.hpp"

namespace fedkemf::fl {
namespace {

FederationOptions tiny_federation() {
  FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.data.noise_stddev = 0.5;
  options.train_samples = 160;
  options.test_samples = 64;
  options.server_pool_samples = 32;
  options.num_clients = 4;
  options.dirichlet_alpha = 0.5;
  options.seed = 11;
  return options;
}

models::ModelSpec tiny_model() {
  return models::ModelSpec{.arch = "mlp", .num_classes = 4, .in_channels = 3,
                           .image_size = 8, .width_multiplier = 0.25};
}

LocalTrainConfig tiny_local() {
  LocalTrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  return config;
}

RunOptions tiny_run(std::size_t rounds = 3) {
  RunOptions options;
  options.rounds = rounds;
  options.sample_ratio = 0.5;
  return options;
}

TEST(LocalUpdate, ReducesTrainingLoss) {
  Federation fed(tiny_federation());
  core::Rng rng(1);
  auto model = models::build_model(tiny_model(), rng);
  LocalTrainConfig config = tiny_local();
  config.epochs = 5;
  const auto& shard = fed.client_shard(0);
  const LocalTrainResult first =
      supervised_local_update(*model, fed.train_set(), shard, config, core::Rng(2));
  const LocalTrainResult second =
      supervised_local_update(*model, fed.train_set(), shard, config, core::Rng(3));
  EXPECT_LT(second.mean_loss, first.mean_loss);
  EXPECT_EQ(first.steps, config.epochs * ((shard.size() + 15) / 16));
}

TEST(LocalUpdate, GradHookRuns) {
  Federation fed(tiny_federation());
  core::Rng rng(1);
  auto model = models::build_model(tiny_model(), rng);
  std::size_t hook_calls = 0;
  supervised_local_update(*model, fed.train_set(), fed.client_shard(0), tiny_local(),
                          core::Rng(2),
                          [&](const std::vector<nn::Parameter*>&) { ++hook_calls; });
  EXPECT_GT(hook_calls, 0u);
}

TEST(LocalUpdate, EmptyShardThrows) {
  Federation fed(tiny_federation());
  core::Rng rng(1);
  auto model = models::build_model(tiny_model(), rng);
  std::vector<std::size_t> empty;
  EXPECT_THROW(
      supervised_local_update(*model, fed.train_set(), empty, tiny_local(), core::Rng(2)),
      std::invalid_argument);
}

TEST(WeightedAverage, ExactWeightsForTwoModels) {
  Federation fed(tiny_federation());
  core::Rng rng(1);
  auto global = models::build_model(tiny_model(), rng);
  auto a = models::build_model(tiny_model(), rng);
  auto b = models::build_model(tiny_model(), rng);
  for (nn::Parameter* p : a->parameters()) p->value.fill(1.0f);
  for (nn::Parameter* p : b->parameters()) p->value.fill(3.0f);

  const std::size_t sampled_arr[] = {0, 1};
  nn::Module* members[] = {a.get(), b.get()};
  weighted_average_into(*global, members, sampled_arr, fed);

  const double w0 = static_cast<double>(fed.client_shard(0).size());
  const double w1 = static_cast<double>(fed.client_shard(1).size());
  const float expected = static_cast<float>((w0 * 1.0 + w1 * 3.0) / (w0 + w1));
  for (nn::Parameter* p : global->parameters()) {
    ASSERT_NEAR(p->value[0], expected, 1e-5f);
  }
}

TEST(FedAvg, RunsAndMetersSymmetricTraffic) {
  Federation fed(tiny_federation());
  FedAvg algorithm(tiny_model(), tiny_local());
  const RunResult result = run_federated(fed, algorithm, tiny_run(3));
  EXPECT_EQ(result.rounds_completed, 3u);
  EXPECT_EQ(result.algorithm, "FedAvg");
  // FedAvg ships the model down and up: equal bytes in both directions.
  EXPECT_EQ(fed.meter().downlink_bytes(), fed.meter().uplink_bytes());
  EXPECT_GT(result.total_bytes, 0u);
}

TEST(FedAvg, FullParticipationWithIdenticalClientsKeepsConsensus) {
  // With one client (ratio 1.0) FedAvg's aggregate equals that client's
  // trained model — average of one.
  FederationOptions options = tiny_federation();
  options.num_clients = 1;
  Federation fed(options);
  FedAvg algorithm(tiny_model(), tiny_local());
  RunOptions run = tiny_run(1);
  run.sample_ratio = 1.0;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_EQ(result.rounds_completed, 1u);
}

TEST(FedProx, ProximalHookShrinksDriftFromAnchor) {
  // Same federation/seeds; FedProx with huge mu must end closer to its round
  // anchor than FedAvg does.
  const auto drift_of = [&](double mu) {
    Federation fed(tiny_federation());
    std::unique_ptr<FedAvg> algorithm;
    if (mu < 0) {
      algorithm = std::make_unique<FedAvg>(tiny_model(), tiny_local());
    } else {
      algorithm = std::make_unique<FedProx>(tiny_model(), tiny_local(), mu);
    }
    algorithm->setup(fed);
    const auto anchor = nn::snapshot_state(algorithm->global_model());
    utils::ThreadPool pool(0);
    const std::size_t sampled_arr[] = {0, 1, 2, 3};
    algorithm->round(0, sampled_arr, pool);
    double drift = 0.0;
    const auto params = algorithm->global_model().parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      core::Tensor diff = params[i]->value.sub(anchor[i]);
      drift += diff.squared_norm();
    }
    return drift;
  };
  const double fedavg_drift = drift_of(-1.0);
  const double fedprox_drift = drift_of(5.0);
  EXPECT_LT(fedprox_drift, fedavg_drift * 0.8);
}

TEST(FedProx, ZeroMuMatchesFedAvgExactly) {
  Federation fed1(tiny_federation());
  Federation fed2(tiny_federation());
  FedAvg fedavg(tiny_model(), tiny_local());
  FedProx fedprox(tiny_model(), tiny_local(), 0.0);
  const RunResult r1 = run_federated(fed1, fedavg, tiny_run(2));
  const RunResult r2 = run_federated(fed2, fedprox, tiny_run(2));
  EXPECT_DOUBLE_EQ(r1.final_accuracy, r2.final_accuracy);
}

TEST(FedProx, RejectsNegativeMu) {
  EXPECT_THROW(FedProx(tiny_model(), tiny_local(), -0.1), std::invalid_argument);
}

TEST(FedNova, UploadsCostMoreThanDownloads) {
  Federation fed(tiny_federation());
  FedNova algorithm(tiny_model(), tiny_local(), /*ship_momentum=*/true);
  run_federated(fed, algorithm, tiny_run(2));
  // Uplink = model + tau + momentum ~= 2x model; downlink = model.
  EXPECT_GT(fed.meter().uplink_bytes(), fed.meter().downlink_bytes() * 3 / 2);
}

TEST(FedNova, MinimalVariantIsNearSymmetric) {
  Federation fed(tiny_federation());
  FedNova algorithm(tiny_model(), tiny_local(), /*ship_momentum=*/false);
  run_federated(fed, algorithm, tiny_run(2));
  const double ratio = static_cast<double>(fed.meter().uplink_bytes()) /
                       static_cast<double>(fed.meter().downlink_bytes());
  EXPECT_NEAR(ratio, 1.0, 0.01);  // only the 8-byte tau rides along
}

TEST(FedNova, MatchesFedAvgWhenStepsAreEqualForOneClient) {
  // With a single sampled client, FedNova's normalized update reduces to
  // x - tau_eff * (x - y)/tau = y: identical to FedAvg of one.
  FederationOptions options = tiny_federation();
  options.num_clients = 2;
  Federation fed1(options);
  Federation fed2(options);
  FedAvg fedavg(tiny_model(), tiny_local());
  FedNova fednova(tiny_model(), tiny_local());
  RunOptions run = tiny_run(1);
  run.sample_ratio = 0.5;  // one of two clients
  const RunResult r1 = run_federated(fed1, fedavg, run);
  const RunResult r2 = run_federated(fed2, fednova, run);
  EXPECT_NEAR(r1.final_accuracy, r2.final_accuracy, 1e-9);
}

TEST(Scaffold, CommunicatesTwiceTheModelBytes) {
  Federation fed_avg(tiny_federation());
  FedAvg fedavg(tiny_model(), tiny_local());
  run_federated(fed_avg, fedavg, tiny_run(2));
  const std::size_t fedavg_bytes = fed_avg.meter().total_bytes();

  Federation fed_scaffold(tiny_federation());
  Scaffold scaffold(tiny_model(), tiny_local());
  run_federated(fed_scaffold, scaffold, tiny_run(2));
  const std::size_t scaffold_bytes = fed_scaffold.meter().total_bytes();

  // Paper: SCAFFOLD costs ~2x FedAvg per round (model + control variate both
  // ways). Control variates exclude buffers so the ratio is slightly under 2.
  const double ratio =
      static_cast<double>(scaffold_bytes) / static_cast<double>(fedavg_bytes);
  EXPECT_GT(ratio, 1.7);
  EXPECT_LE(ratio, 2.05);
}

TEST(Scaffold, LearnsOnSkewedData) {
  Federation fed(tiny_federation());
  Scaffold algorithm(tiny_model(), tiny_local());
  RunOptions run = tiny_run(8);
  run.sample_ratio = 1.0;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_GT(result.best_accuracy, 0.3);  // above 4-class chance
}

TEST(Algorithms, AllBaselinesImproveOverInitialAccuracy) {
  for (int which = 0; which < 4; ++which) {
    Federation fed(tiny_federation());
    std::unique_ptr<Algorithm> algorithm;
    switch (which) {
      case 0: algorithm = std::make_unique<FedAvg>(tiny_model(), tiny_local()); break;
      case 1: algorithm = std::make_unique<FedProx>(tiny_model(), tiny_local(), 0.01); break;
      case 2: algorithm = std::make_unique<FedNova>(tiny_model(), tiny_local()); break;
      case 3: algorithm = std::make_unique<Scaffold>(tiny_model(), tiny_local()); break;
    }
    RunOptions run = tiny_run(8);
    run.sample_ratio = 1.0;
    const RunResult result = run_federated(fed, *algorithm, run);
    EXPECT_GT(result.best_accuracy, 0.3) << result.algorithm;
  }
}

TEST(Runner, EarlyStopAtTargetAccuracy) {
  Federation fed(tiny_federation());
  FedAvg algorithm(tiny_model(), tiny_local());
  RunOptions run = tiny_run(50);
  run.sample_ratio = 1.0;
  run.stop_at_accuracy = 0.3;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_LT(result.rounds_completed, 50u);
  EXPECT_GE(result.final_accuracy, 0.3);
}

TEST(Runner, EvalEveryReducesHistoryPoints) {
  Federation fed(tiny_federation());
  FedAvg algorithm(tiny_model(), tiny_local());
  RunOptions run = tiny_run(6);
  run.eval_every = 3;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_EQ(result.history.size(), 2u);  // rounds 3 and 6
  EXPECT_EQ(result.rounds_completed, 6u);
}

TEST(Runner, RejectsZeroRounds) {
  Federation fed(tiny_federation());
  FedAvg algorithm(tiny_model(), tiny_local());
  RunOptions run;
  run.rounds = 0;
  EXPECT_THROW(run_federated(fed, algorithm, run), std::invalid_argument);
}

}  // namespace
}  // namespace fedkemf::fl
