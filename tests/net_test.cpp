// Socket-transport tests: read_exact/write_all against a dribbling
// socketpair, frame-protocol robustness (bad magic, truncated/oversize/
// corrupted frames, v1 model bodies) surfacing as typed errors, TrafficMeter
// concurrency, the Channel<->Transport delivery contract, EpollServer
// routing, and end-to-end mirror/elastic runs in one process.

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include <sys/socket.h>

#include "comm/channel.hpp"
#include "core/rng.hpp"
#include "models/zoo.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace fedkemf::net {
namespace {

// ---- Helpers ----

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

std::unique_ptr<nn::Module> tiny_model(std::uint64_t seed) {
  core::Rng rng(seed);
  return models::build_model(
      models::ModelSpec{.arch = "mlp", .num_classes = 4, .in_channels = 1,
                        .image_size = 4, .width_multiplier = 0.25},
      rng);
}

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/fedkemf_net_test_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

/// A small FedSpec every e2e test shares: 2 clients, 2 rounds, tiny model.
FedSpec tiny_spec(const std::string& algorithm) {
  FedSpec spec;
  spec.algorithm = algorithm;
  spec.federation.data = data::SyntheticSpec::cifar_like();
  spec.federation.data.image_size = 8;
  spec.federation.train_samples = 96;
  spec.federation.test_samples = 48;
  spec.federation.num_clients = 2;
  spec.federation.seed = 7;
  spec.client_model = {.arch = "cnn2",
                       .num_classes = spec.federation.data.num_classes,
                       .in_channels = spec.federation.data.channels,
                       .image_size = 8,
                       .width_multiplier = 0.25};
  spec.knowledge_model = spec.client_model;
  spec.local.epochs = 1;
  spec.local.batch_size = 16;
  spec.rounds = 2;
  return spec;
}

// ---- read_exact / write_all (satellite: EINTR-safe short-IO helpers) ----

TEST(SocketIo, ReadExactAssemblesOneByteAtATime) {
  SocketPair pair;
  const std::string message = "federated";
  std::thread writer([&] {
    for (const char c : message) {
      ASSERT_EQ(1, ::send(pair.a, &c, 1, 0));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::uint8_t> buffer(message.size());
  read_exact(pair.b, buffer.data(), buffer.size(), Deadline::after(5.0));
  writer.join();
  EXPECT_EQ(0, std::memcmp(buffer.data(), message.data(), message.size()));
}

TEST(SocketIo, ReadExactHonorsDeadlineOnSilentPeer) {
  SocketPair pair;
  std::uint8_t byte = 0;
  EXPECT_THROW(read_exact(pair.b, &byte, 1, Deadline::after(0.05)), IoTimeout);
}

TEST(SocketIo, ReadExactReportsPeerClose) {
  SocketPair pair;
  ::close(pair.a);
  pair.a = -1;
  std::uint8_t byte = 0;
  EXPECT_THROW(read_exact(pair.b, &byte, 1, Deadline::after(1.0)), IoClosed);
}

TEST(SocketIo, WriteAllMovesLargePayloadThroughSmallBuffers) {
  SocketPair pair;
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::thread writer(
      [&] { write_all(pair.a, payload.data(), payload.size(), Deadline::after(10.0)); });
  std::vector<std::uint8_t> received(payload.size());
  read_exact(pair.b, received.data(), received.size(), Deadline::after(10.0));
  writer.join();
  EXPECT_EQ(payload, received);
}

TEST(SocketIo, EndpointParsing) {
  const Endpoint tcp = Endpoint::parse("tcp://127.0.0.1:9000");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 9000);
  const Endpoint uds = Endpoint::parse("unix:///tmp/x.sock");
  EXPECT_EQ(uds.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(uds.path, "/tmp/x.sock");
  EXPECT_THROW(Endpoint::parse("http://nope"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp://nohost"), std::invalid_argument);
}

// ---- Frame protocol robustness (satellite: typed errors, never hangs) ----

Frame sample_frame() {
  Frame frame;
  frame.type = FrameType::kUpload;
  frame.round = 3;
  frame.client = 7;
  frame.name = "model";
  frame.scalars = {12.0, 0.05, 1.25};
  frame.body = {1, 2, 3, 4, 5};
  return frame;
}

TEST(FrameCodec, RoundTrip) {
  const std::vector<std::uint8_t> wire = encode_frame(sample_frame());
  std::uint32_t crc = 0;
  const std::size_t payload_len = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
      FrameLimits{}, &crc);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload_len);
  const Frame decoded = decode_frame_payload(
      std::span<const std::uint8_t>(wire.data() + kFrameHeaderBytes, payload_len), crc);
  EXPECT_EQ(decoded.type, FrameType::kUpload);
  EXPECT_EQ(decoded.round, 3u);
  EXPECT_EQ(decoded.client, 7u);
  EXPECT_EQ(decoded.name, "model");
  EXPECT_EQ(decoded.scalars, sample_frame().scalars);
  EXPECT_EQ(decoded.body, sample_frame().body);
}

TEST(FrameCodec, WrongMagicIsProtocolError) {
  std::vector<std::uint8_t> wire = encode_frame(sample_frame());
  wire[0] ^= 0xFF;
  std::uint32_t crc = 0;
  EXPECT_THROW(
      decode_frame_header(
          std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
          FrameLimits{}, &crc),
      ProtocolError);
}

TEST(FrameCodec, OversizeLengthIsProtocolError) {
  std::vector<std::uint8_t> wire = encode_frame(sample_frame());
  wire[4] = 0xFF;  // length field low byte
  wire[5] = 0xFF;
  wire[6] = 0xFF;
  wire[7] = 0xFF;
  std::uint32_t crc = 0;
  EXPECT_THROW(
      decode_frame_header(
          std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
          FrameLimits{}, &crc),
      ProtocolError);
}

TEST(FrameCodec, CorruptPayloadFailsCrc) {
  std::vector<std::uint8_t> wire = encode_frame(sample_frame());
  wire.back() ^= 0x40;
  std::uint32_t crc = 0;
  const std::size_t payload_len = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
      FrameLimits{}, &crc);
  EXPECT_THROW(
      decode_frame_payload(
          std::span<const std::uint8_t>(wire.data() + kFrameHeaderBytes, payload_len), crc),
      ProtocolError);
}

TEST(FrameCodec, ProtocolErrorIsAChecksumError) {
  // The socket transport reports malformed bytes through the *existing*
  // typed-error contract, so callers catch one family either way.
  std::vector<std::uint8_t> wire = encode_frame(sample_frame());
  wire[0] ^= 0xFF;
  std::uint32_t crc = 0;
  EXPECT_THROW(
      decode_frame_header(
          std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
          FrameLimits{}, &crc),
      comm::ChecksumError);
}

TEST(FrameCodec, TruncatedFrameOverSocketIsIoClosed) {
  SocketPair pair;
  const std::vector<std::uint8_t> wire = encode_frame(sample_frame());
  // Send only half the frame, then hang up mid-payload.
  ASSERT_EQ(static_cast<ssize_t>(wire.size() / 2),
            ::send(pair.a, wire.data(), wire.size() / 2, 0));
  ::close(pair.a);
  pair.a = -1;
  EXPECT_THROW(read_frame(pair.b, FrameLimits{}, Deadline::after(1.0)), IoClosed);
}

TEST(FrameCodec, SocketRoundTrip) {
  SocketPair pair;
  std::thread writer([&] { write_frame(pair.a, sample_frame(), Deadline::after(5.0)); });
  const Frame frame = read_frame(pair.b, FrameLimits{}, Deadline::after(5.0));
  writer.join();
  EXPECT_EQ(frame.name, "model");
  EXPECT_EQ(frame.body, sample_frame().body);
}

TEST(FrameCodec, HelloRoundTrip) {
  HelloRequest request;
  request.mode = 1;
  request.algorithm = "fedprox";
  request.config_digest = 0xDEADBEEFCAFEull;
  request.owned_clients = {4, 2, 9};
  request.rejoin = 1;
  const HelloRequest decoded = decode_hello(encode_hello(request));
  EXPECT_EQ(decoded.mode, 1);
  EXPECT_EQ(decoded.algorithm, "fedprox");
  EXPECT_EQ(decoded.config_digest, request.config_digest);
  EXPECT_EQ(decoded.owned_clients, request.owned_clients);
  EXPECT_EQ(decoded.rejoin, 1);

  HelloReply reply;
  reply.accepted = 0;
  reply.current_round = 5;
  reply.message = "digest mismatch";
  const HelloReply round = decode_hello_reply(encode_hello_reply(reply));
  EXPECT_EQ(round.accepted, 0);
  EXPECT_EQ(round.current_round, 5u);
  EXPECT_EQ(round.message, "digest mismatch");
}

// ---- Model-body screening (satellite: v1 payloads rejected over sockets) --

TEST(ModelBodyScreen, AcceptsVersion2Payload) {
  auto model = tiny_model(1);
  EXPECT_NO_THROW(validate_model_body(comm::serialize_model(*model)));
}

TEST(ModelBodyScreen, RejectsVersion1Payload) {
  auto model = tiny_model(1);
  std::vector<std::uint8_t> body = comm::serialize_model(*model);
  body[4] = 1;  // version field: v1 carries no checksum -> untrusted on a wire
  EXPECT_THROW(validate_model_body(body), comm::ChecksumError);
}

TEST(ModelBodyScreen, RejectsOversizeTensorCount) {
  auto model = tiny_model(1);
  std::vector<std::uint8_t> body = comm::serialize_model(*model);
  // Claim an absurd tensor count and recompute the CRC so only the bound
  // check can reject it (a hostile-length guard, not a checksum catch).
  body[12] = 0xFF;
  body[13] = 0xFF;
  body[14] = 0xFF;
  body[15] = 0x7F;
  const std::uint32_t crc =
      core::crc32(std::span<const std::uint8_t>(body).subspan(12));
  for (int i = 0; i < 4; ++i) body[8 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  EXPECT_THROW(validate_model_body(body), comm::ChecksumError);
}

TEST(ModelBodyScreen, RejectsFlippedBit) {
  auto model = tiny_model(1);
  std::vector<std::uint8_t> body = comm::serialize_model(*model);
  body[body.size() / 2] ^= 0x10;
  EXPECT_THROW(validate_model_body(body), comm::ChecksumError);
}

TEST(ModelBodyScreen, RejectsTruncatedBody) {
  EXPECT_THROW(validate_model_body(std::vector<std::uint8_t>{1, 2, 3}),
               comm::ChecksumError);
}

// ---- TrafficMeter concurrency (satellite: exercised under TSan in CI) ----

TEST(TrafficMeterConcurrency, ConcurrentRecordsKeepExactTotals) {
  comm::TrafficMeter meter;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&meter, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        meter.record({.round = t,
                      .client_id = i % 4,
                      .direction = i % 2 ? comm::Direction::kUplink
                                         : comm::Direction::kDownlink,
                      .bytes = 10,
                      .payload = "model"});
      }
    });
  }
  // Concurrent readers must never tear or crash (relaxed totals are fine).
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)meter.total_bytes();
      (void)meter.num_transfers();
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(meter.total_bytes(), kThreads * kPerThread * 10);
  EXPECT_EQ(meter.num_transfers(), kThreads * kPerThread);
  EXPECT_EQ(meter.uplink_bytes() + meter.downlink_bytes(), meter.total_bytes());
  EXPECT_EQ(meter.records().size(), kThreads * kPerThread);
}

// ---- Channel <-> Transport delivery contract ----

class ScriptedTransport : public comm::Transport {
 public:
  explicit ScriptedTransport(Outcome outcome) : outcome_(outcome) {}
  std::vector<std::uint8_t> replacement;
  std::size_t calls = 0;

  Outcome attempt(std::vector<std::uint8_t>& payload, std::size_t, std::size_t,
                  comm::Direction, std::size_t, const std::string&) override {
    ++calls;
    if (outcome_ == Outcome::kReplaced) payload = replacement;
    return outcome_;
  }

 private:
  Outcome outcome_;
};

TEST(ChannelTransport, ReplacedBytesReachTheDestinationAndTheMeter) {
  auto src = tiny_model(1);
  auto dst = tiny_model(2);
  auto other = tiny_model(3);
  comm::TrafficMeter meter;
  comm::Channel channel(&meter);
  ScriptedTransport transport(comm::Transport::Outcome::kReplaced);
  transport.replacement = comm::serialize_model(*other);
  channel.set_transport(&transport);
  channel.transfer(*src, *dst, 0, 0, comm::Direction::kUplink, "model");
  channel.set_transport(nullptr);
  // dst now holds `other`'s weights (the wire bytes), not src's.
  EXPECT_EQ(comm::serialize_model(*dst), comm::serialize_model(*other));
  // The meter accounted the bytes that actually crossed the wire.
  EXPECT_EQ(meter.total_bytes(), transport.replacement.size());
}

TEST(ChannelTransport, PersistentDropExhaustsRetriesAsTransferFailed) {
  auto src = tiny_model(1);
  auto dst = tiny_model(2);
  comm::TrafficMeter meter;
  comm::Channel channel(&meter);
  comm::RetryPolicy retry;
  retry.max_attempts = 3;
  channel.set_retry_policy(retry);
  ScriptedTransport transport(comm::Transport::Outcome::kDropped);
  channel.set_transport(&transport);
  EXPECT_THROW(channel.transfer(*src, *dst, 0, 0, comm::Direction::kUplink, "model"),
               comm::TransferFailed);
  channel.set_transport(nullptr);
  EXPECT_EQ(transport.calls, 3u);
}

// ---- EpollServer routing ----

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = unique_socket_path(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name());
    server_ = std::make_unique<EpollServer>(Endpoint::parse("unix://" + path_));
    server_->start();
  }
  void TearDown() override {
    server_->stop();
    ::unlink(path_.c_str());
  }

  std::unique_ptr<ClientSession> connect(std::uint32_t id, bool collect_acks = false) {
    auto session = std::make_unique<ClientSession>(Endpoint::parse("unix://" + path_),
                                                   Deadline::after(5.0), FrameLimits{},
                                                   collect_acks);
    HelloRequest request;
    request.owned_clients = {id};
    const HelloReply reply = session->hello(request, Deadline::after(5.0));
    EXPECT_TRUE(reply.accepted);
    return session;
  }

  std::string path_;
  std::unique_ptr<EpollServer> server_;
};

TEST_F(ServerFixture, EarlyUploadIsParkedUntilAwaited) {
  auto session = connect(0);
  Frame upload;
  upload.type = FrameType::kUpload;
  upload.round = 0;
  upload.client = 0;
  upload.name = "model";
  upload.body = {9, 9, 9};
  session->send(upload, Deadline::after(5.0));
  // The upload arrives before anyone asks for it; await must still claim it.
  const std::optional<Frame> claimed =
      server_->await_upload(0, 0, "model", Deadline::after(5.0));
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->body, upload.body);
}

TEST_F(ServerFixture, AwaitUploadTimesOutWithoutTraffic) {
  auto session = connect(0);
  EXPECT_FALSE(server_->await_upload(0, 0, "model", Deadline::after(0.1)).has_value());
}

TEST_F(ServerFixture, ConcurrentUploadsFromManyClientsAllArrive) {
  constexpr std::uint32_t kClients = 6;
  std::vector<std::thread> threads;
  for (std::uint32_t id = 0; id < kClients; ++id) {
    threads.emplace_back([this, id] {
      auto session = connect(id);
      Frame upload;
      upload.type = FrameType::kUpload;
      upload.round = 1;
      upload.client = id;
      upload.name = "model";
      upload.body = {static_cast<std::uint8_t>(id)};
      session->send(upload, Deadline::after(5.0));
      // Hold the connection open until the server has claimed the upload.
      while (server_->is_connected(id) && server_->frames_received() < 2 * kClients) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  // Barrier: await_upload treats an unregistered id as a dead owner, so wait
  // for every HELLO before claiming.
  EXPECT_TRUE(server_->wait_for_clients(kClients, Deadline::after(10.0)));
  std::vector<std::optional<Frame>> claimed(kClients);
  for (std::uint32_t id = 0; id < kClients; ++id) {
    claimed[id] = server_->await_upload(1, id, "model", Deadline::after(10.0));
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t id = 0; id < kClients; ++id) {
    ASSERT_TRUE(claimed[id].has_value()) << "client " << id;
    EXPECT_EQ(claimed[id]->body.front(), static_cast<std::uint8_t>(id));
  }
}

TEST_F(ServerFixture, LateUploadsDrainViaTakeStaleUploads) {
  auto session = connect(3);
  Frame late;
  late.type = FrameType::kUpload;
  late.round = 1;
  late.client = 3;
  late.name = "model";
  late.scalars = {4.0, 0.05};
  late.body = {1};
  session->send(late, Deadline::after(5.0));
  // Wait for the loop to park it, then sweep as round 3 would.
  std::vector<Frame> stale;
  const Deadline deadline = Deadline::after(5.0);
  while (stale.empty() && !deadline.expired()) {
    stale = server_->take_stale_uploads(3);
    if (stale.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale.front().round, 1u);
  EXPECT_EQ(stale.front().client, 3u);
  EXPECT_EQ(stale.front().scalars, late.scalars);
  // Current-round uploads must NOT be swept.
  EXPECT_TRUE(server_->take_stale_uploads(1).empty());
}

TEST_F(ServerFixture, MembershipEventsTrackConnectAndDisconnect) {
  {
    auto session = connect(5);
    const Deadline deadline = Deadline::after(5.0);
    while (!server_->is_connected(5) && !deadline.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(server_->is_connected(5));
  }  // destructor: BYE + close
  const Deadline deadline = Deadline::after(5.0);
  while (server_->is_connected(5) && !deadline.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<MembershipEvent> events = server_->take_membership_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kJoined);
  EXPECT_EQ(events[0].client_id, 5u);
  EXPECT_EQ(events[1].kind, MembershipEvent::Kind::kLeft);
  EXPECT_EQ(events[1].client_id, 5u);
}

TEST_F(ServerFixture, ValidatorRejectionClosesAfterReasonedAck) {
  server_->stop();
  server_ = std::make_unique<EpollServer>(Endpoint::parse("unix://" + path_));
  server_->set_hello_validator([](const HelloRequest&) {
    HelloReply reply;
    reply.accepted = 0;
    reply.message = "wrong digest";
    return reply;
  });
  server_->start();
  ClientSession session(Endpoint::parse("unix://" + path_), Deadline::after(5.0));
  HelloRequest request;
  request.owned_clients = {0};
  const HelloReply reply = session.hello(request, Deadline::after(5.0));
  EXPECT_FALSE(reply.accepted);
  EXPECT_EQ(reply.message, "wrong digest");
  EXPECT_TRUE(server_->connected_clients().empty());
}

TEST_F(ServerFixture, DuplicateOwnershipIsRejected) {
  auto first = connect(2);
  ClientSession second(Endpoint::parse("unix://" + path_), Deadline::after(5.0));
  HelloRequest request;
  request.owned_clients = {2};
  const HelloReply reply = second.hello(request, Deadline::after(5.0));
  EXPECT_FALSE(reply.accepted);
}

TEST_F(ServerFixture, GarbageBytesCloseTheConnectionNotTheServer) {
  auto victim = connect(0);
  {
    // Raw socket spewing garbage: the loop must drop it and keep serving.
    Fd raw = connect_endpoint(Endpoint::parse("unix://" + path_), Deadline::after(5.0));
    std::vector<std::uint8_t> garbage(256, 0xAB);
    write_all(raw.get(), garbage.data(), garbage.size(), Deadline::after(5.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The registered client still works end to end.
  Frame upload;
  upload.type = FrameType::kUpload;
  upload.round = 0;
  upload.client = 0;
  upload.name = "model";
  upload.body = {7};
  victim->send(upload, Deadline::after(5.0));
  EXPECT_TRUE(server_->await_upload(0, 0, "model", Deadline::after(5.0)).has_value());
}

// ---- Service layer ----

TEST(ServiceLayer, ConfigDigestSeparatesSpecs) {
  const FedSpec a = tiny_spec("fedavg");
  FedSpec b = a;
  EXPECT_EQ(config_digest(a), config_digest(b));
  b.local.learning_rate += 1e-9;
  EXPECT_NE(config_digest(a), config_digest(b));
  FedSpec c = a;
  c.algorithm = "fedprox";
  EXPECT_NE(config_digest(a), config_digest(c));
}

TEST(ServiceLayer, MakeAlgorithmCoversAllSeven) {
  for (const char* name :
       {"fedavg", "fedprox", "fednova", "scaffold", "fedkemf", "feddf", "fedmd"}) {
    FedSpec spec = tiny_spec(name);
    EXPECT_NE(make_algorithm(spec), nullptr) << name;
  }
  FedSpec bogus = tiny_spec("fedavg");
  bogus.algorithm = "fedsgd";
  EXPECT_THROW(make_algorithm(bogus), std::invalid_argument);
  EXPECT_TRUE(elastic_capable("fedavg"));
  EXPECT_TRUE(elastic_capable("fednova"));
  EXPECT_FALSE(elastic_capable("fedkemf"));
  EXPECT_FALSE(elastic_capable("scaffold"));
}

// ---- End-to-end: mirror parity in one process ----

TEST(MirrorEndToEnd, DistributedRunMatchesInProcessBitwise) {
  const FedSpec spec = tiny_spec("fedavg");
  const fl::RunResult reference = run_in_process(spec);

  const std::string path = unique_socket_path("mirror_e2e");
  ::unlink(path.c_str());
  MirrorServerOptions server_options;
  server_options.endpoint = Endpoint::parse("unix://" + path);
  server_options.expect_clients = 1;
  server_options.hello_wait_seconds = 30.0;
  server_options.await_timeout_seconds = 60.0;
  MirrorClientOptions client_options;
  client_options.endpoint = server_options.endpoint;
  client_options.owned = {0};
  client_options.await_timeout_seconds = 60.0;

  fl::RunResult server_result;
  fl::RunResult client_result;
  std::thread server([&] { server_result = run_mirror_server(spec, server_options); });
  std::thread client([&] { client_result = run_mirror_client(spec, client_options); });
  server.join();
  client.join();
  ::unlink(path.c_str());

  // The acceptance bar: identical accuracy AND identical per-round metered
  // bytes — the distributed run is indistinguishable from the simulator.
  EXPECT_EQ(server_result.final_accuracy, reference.final_accuracy);
  EXPECT_EQ(client_result.final_accuracy, reference.final_accuracy);
  EXPECT_EQ(server_result.total_bytes, reference.total_bytes);
  ASSERT_EQ(server_result.history.size(), reference.history.size());
  for (std::size_t i = 0; i < reference.history.size(); ++i) {
    EXPECT_EQ(server_result.history[i].round_bytes, reference.history[i].round_bytes);
    EXPECT_EQ(server_result.history[i].accuracy, reference.history[i].accuracy);
  }
}

TEST(MirrorEndToEnd, DigestMismatchIsRejectedAtHello) {
  const FedSpec spec = tiny_spec("fedavg");
  const std::string path = unique_socket_path("mirror_reject");
  ::unlink(path.c_str());
  MirrorServerOptions server_options;
  server_options.endpoint = Endpoint::parse("unix://" + path);
  server_options.expect_clients = 1;
  server_options.hello_wait_seconds = 2.0;
  FedSpec wrong = spec;
  wrong.local.learning_rate *= 2;
  MirrorClientOptions client_options;
  client_options.endpoint = server_options.endpoint;
  client_options.owned = {0};

  std::thread server([&] {
    // The only client is rejected, so the start barrier must time out.
    EXPECT_THROW(run_mirror_server(spec, server_options), std::runtime_error);
  });
  std::thread client([&] {
    EXPECT_THROW(run_mirror_client(wrong, client_options), std::runtime_error);
  });
  server.join();
  client.join();
  ::unlink(path.c_str());
}

// ---- End-to-end: elastic mode ----

TEST(ElasticEndToEnd, TwoWorkersServeAllRounds) {
  const FedSpec spec = tiny_spec("fedavg");
  const std::string path = unique_socket_path("elastic_e2e");
  ::unlink(path.c_str());
  ElasticServerOptions server_options;
  server_options.endpoint = Endpoint::parse("unix://" + path);
  server_options.min_clients = 2;
  server_options.join_wait_seconds = 30.0;
  server_options.upload_timeout_seconds = 30.0;

  fl::RunResult result;
  std::thread server([&] { result = run_elastic_server(spec, server_options); });
  std::vector<ElasticClientResult> served(2);
  std::vector<std::thread> workers;
  for (std::size_t id = 0; id < 2; ++id) {
    workers.emplace_back([&, id] {
      ElasticClientOptions options;
      options.endpoint = Endpoint::parse("unix://" + path);
      options.client_id = id;
      served[id] = run_elastic_client(spec, options);
    });
  }
  server.join();
  for (auto& w : workers) w.join();
  ::unlink(path.c_str());

  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_EQ(result.total_joined, 2u);
  EXPECT_GT(result.total_bytes, 0u);
  EXPECT_GE(result.final_accuracy, 0.0);
  EXPECT_EQ(served[0].rounds_served, spec.rounds);
  EXPECT_EQ(served[1].rounds_served, spec.rounds);
}

TEST(ElasticEndToEnd, RejectsEnsembleAlgorithms) {
  const FedSpec spec = tiny_spec("fedkemf");
  ElasticServerOptions options;
  options.endpoint = Endpoint::parse("unix://" + unique_socket_path("elastic_bad"));
  EXPECT_THROW(run_elastic_server(spec, options), std::invalid_argument);
}

// ---- Hostname resolution (satellite: getaddrinfo endpoints) ----

TEST(SocketIo, HostnameResolvesViaGetaddrinfo) {
  Endpoint listen_ep;
  listen_ep.kind = Endpoint::Kind::kTcp;
  listen_ep.host = "127.0.0.1";
  listen_ep.port = 0;  // ephemeral
  Fd listener = listen_endpoint(listen_ep);
  const Endpoint bound = listener_endpoint(listener.get(), listen_ep);
  Endpoint by_name = bound;
  by_name.host = "localhost";
  const Fd conn = connect_endpoint(by_name, Deadline::after(5.0));
  EXPECT_TRUE(conn.valid());
}

TEST(SocketIo, UnresolvableHostnameIsTypedErrorNotAHang) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = "no-such-host.invalid";
  ep.port = 9;
  const auto start = std::chrono::steady_clock::now();
  // Resolution failure surfaces as the typed IoError immediately — it must
  // never spin in the connect-retry loop until the deadline.
  EXPECT_THROW(connect_endpoint(ep, Deadline::after(60.0)), IoError);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(waited, 30.0);
}

// ---- Frame authentication (satellite: PSK SipHash tags) ----

TEST(FrameAuth, KeyedRoundTripVerifies) {
  const FrameKey key = derive_frame_key("secret");
  const std::vector<std::uint8_t> wire = encode_frame(sample_frame(), &key);
  std::uint32_t crc = 0;
  const std::size_t body_len = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
      FrameLimits{}, &crc);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + body_len);
  const Frame decoded = decode_frame_body(
      std::span<const std::uint8_t>(wire.data() + kFrameHeaderBytes, body_len), crc, &key);
  EXPECT_TRUE(decoded.flags & kFlagAuthTag);
  EXPECT_EQ(decoded.body, sample_frame().body);
  EXPECT_EQ(decoded.name, sample_frame().name);
}

TEST(FrameAuth, DistinctPassphrasesProduceDistinctKeysAndTags) {
  EXPECT_NE(derive_frame_key("alpha"), derive_frame_key("beta"));
  const FrameKey a = derive_frame_key("alpha");
  const FrameKey b = derive_frame_key("beta");
  const std::vector<std::uint8_t> wire_a = encode_frame(sample_frame(), &a);
  const std::vector<std::uint8_t> wire_b = encode_frame(sample_frame(), &b);
  ASSERT_EQ(wire_a.size(), wire_b.size());
  // Same frame, different keys: the trailing 8-byte tags must differ.
  EXPECT_NE(std::vector<std::uint8_t>(wire_a.end() - kFrameTagBytes, wire_a.end()),
            std::vector<std::uint8_t>(wire_b.end() - kFrameTagBytes, wire_b.end()));
}

TEST(FrameAuth, TaggedFrameWithoutKeyIsAuthError) {
  const FrameKey key = derive_frame_key("secret");
  const std::vector<std::uint8_t> wire = encode_frame(sample_frame(), &key);
  std::uint32_t crc = 0;
  const std::size_t body_len = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(wire.data(), kFrameHeaderBytes),
      FrameLimits{}, &crc);
  EXPECT_THROW(
      decode_frame_body(
          std::span<const std::uint8_t>(wire.data() + kFrameHeaderBytes, body_len), crc,
          nullptr),
      AuthError);
}

TEST(FrameAuth, RecomputedCrcForgeryIsCaughtOnlyByAuth) {
  // The CRC protects against *transit* corruption, not tampering: flip a
  // payload byte and recompute the CRC, and the unkeyed decoder accepts the
  // forgery without complaint.
  std::vector<std::uint8_t> plain = encode_frame(sample_frame());
  const std::size_t plain_payload = plain.size() - kFrameHeaderBytes;
  plain[kFrameHeaderBytes] ^= 0x04;  // flips the frame type
  const std::uint32_t forged_crc = core::crc32(std::span<const std::uint8_t>(
      plain.data() + kFrameHeaderBytes, plain_payload));
  for (int i = 0; i < 4; ++i) {
    plain[8 + i] = static_cast<std::uint8_t>(forged_crc >> (8 * i));
  }
  std::uint32_t crc = 0;
  const std::size_t body_len = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(plain.data(), kFrameHeaderBytes),
      FrameLimits{}, &crc);
  const Frame forged = decode_frame_body(
      std::span<const std::uint8_t>(plain.data() + kFrameHeaderBytes, body_len), crc,
      nullptr);
  EXPECT_NE(forged.type, sample_frame().type);  // the forgery went through

  // The keyed decoder rejects the identical tamper: the attacker can fix the
  // CRC but cannot forge the SipHash tag without the key.
  const FrameKey key = derive_frame_key("secret");
  std::vector<std::uint8_t> keyed = encode_frame(sample_frame(), &key);
  const std::size_t keyed_payload = keyed.size() - kFrameHeaderBytes - kFrameTagBytes;
  keyed[kFrameHeaderBytes] ^= 0x04;
  const std::uint32_t keyed_crc = core::crc32(std::span<const std::uint8_t>(
      keyed.data() + kFrameHeaderBytes, keyed_payload));
  for (int i = 0; i < 4; ++i) {
    keyed[8 + i] = static_cast<std::uint8_t>(keyed_crc >> (8 * i));
  }
  std::uint32_t crc2 = 0;
  const std::size_t body_len2 = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(keyed.data(), kFrameHeaderBytes),
      FrameLimits{}, &crc2);
  EXPECT_THROW(
      decode_frame_body(
          std::span<const std::uint8_t>(keyed.data() + kFrameHeaderBytes, body_len2), crc2,
          &key),
      AuthError);
}

TEST(FrameAuth, ServerRejectsUnauthenticatedClient) {
  const std::string path = unique_socket_path("auth_reject");
  ::unlink(path.c_str());
  EpollServer server(Endpoint::parse("unix://" + path));
  server.set_frame_auth(derive_frame_key("secret"));
  server.start();
  const std::uint64_t before =
      obs::MetricsRegistry::global().snapshot().counter("net.server.auth_failures");
  ClientSession session(Endpoint::parse("unix://" + path), Deadline::after(5.0));
  HelloRequest request;
  request.owned_clients = {0};
  // The untagged HELLO closes the connection before any reply.
  EXPECT_THROW(session.hello(request, Deadline::after(5.0)), IoError);
  EXPECT_GT(obs::MetricsRegistry::global().snapshot().counter("net.server.auth_failures"),
            before);
  server.stop();
  ::unlink(path.c_str());
}

TEST(FrameAuth, AuthenticatedUploadFlowsEndToEnd) {
  const std::string path = unique_socket_path("auth_e2e");
  ::unlink(path.c_str());
  const FrameKey key = derive_frame_key("secret");
  EpollServer server(Endpoint::parse("unix://" + path));
  server.set_frame_auth(key);
  server.start();
  ClientSession session(Endpoint::parse("unix://" + path), Deadline::after(5.0),
                        FrameLimits{}, /*collect_acks=*/false, &key);
  HelloRequest request;
  request.owned_clients = {0};
  const HelloReply reply = session.hello(request, Deadline::after(5.0));
  EXPECT_TRUE(reply.accepted);
  Frame upload;
  upload.type = FrameType::kUpload;
  upload.round = 0;
  upload.client = 0;
  upload.name = "model";
  upload.body = {1, 2, 3};
  session.send(upload, Deadline::after(5.0));
  const std::optional<Frame> claimed =
      server.await_upload(0, 0, "model", Deadline::after(5.0));
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->body, upload.body);
  server.stop();
  ::unlink(path.c_str());
}

// ---- Idempotent redelivery (tentpole: duplicates never double-apply) ----

TEST_F(ServerFixture, DuplicateUploadIsAckedButAppliedOnce) {
  const std::uint64_t before =
      obs::MetricsRegistry::global().snapshot().counter("net.server.duplicate_uploads");
  auto session = connect(0, /*collect_acks=*/true);
  Frame upload;
  upload.type = FrameType::kUpload;
  upload.round = 0;
  upload.client = 0;
  upload.name = "model";
  upload.body = {1, 2, 3};
  session->send(upload, Deadline::after(5.0));
  ASSERT_TRUE(server_->await_upload(0, 0, "model", Deadline::after(5.0)).has_value());
  // Redeliver the identical upload after it was claimed (what a client retry
  // or chaos-proxy duplication produces).
  session->send(upload, Deadline::after(5.0));
  // Both deliveries are ACKed — the client's retry loop always terminates...
  EXPECT_TRUE(session->await_ack(0, 0, "model", Deadline::after(5.0)).has_value());
  EXPECT_TRUE(session->await_ack(0, 0, "model", Deadline::after(5.0)).has_value());
  // ...but the duplicate is never re-parked: no second claim, no stale leak.
  EXPECT_FALSE(server_->await_upload(0, 0, "model", Deadline::after(0.2)).has_value());
  EXPECT_TRUE(server_->take_stale_uploads(10).empty());
  EXPECT_GT(
      obs::MetricsRegistry::global().snapshot().counter("net.server.duplicate_uploads"),
      before);
}

TEST_F(ServerFixture, FinishedRoundUploadGoesStaleExactlyOnce) {
  auto session = connect(1, /*collect_acks=*/true);
  Frame late;
  late.type = FrameType::kUpload;
  late.round = 0;
  late.client = 1;
  late.name = "model";
  late.scalars = {4.0, 0.05};
  late.body = {9};
  session->send(late, Deadline::after(5.0));
  std::vector<Frame> stale;
  const Deadline deadline = Deadline::after(5.0);
  while (stale.empty() && !deadline.expired()) {
    stale = server_->take_stale_uploads(2);
    if (stale.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale.front().client, 1u);
  // Redelivery after the stale drain: ACKed, but never re-ingested.
  session->send(late, Deadline::after(5.0));
  EXPECT_TRUE(session->await_ack(0, 1, "model", Deadline::after(5.0)).has_value());
  EXPECT_TRUE(session->await_ack(0, 1, "model", Deadline::after(5.0)).has_value());
  EXPECT_TRUE(server_->take_stale_uploads(3).empty());
}

// ---- Heartbeats and backpressure (tentpole: bounded liveness) ----

TEST(Heartbeat, SilentConnectionIsEvictedWhileActiveOneSurvives) {
  const std::string path = unique_socket_path("heartbeat");
  ::unlink(path.c_str());
  EpollServer server(Endpoint::parse("unix://" + path));
  server.set_heartbeat(
      {.enabled = true, .interval_seconds = 0.1, .timeout_seconds = 0.5});
  server.start();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();

  ClientSession active(Endpoint::parse("unix://" + path), Deadline::after(5.0));
  HelloRequest hello_active;
  hello_active.owned_clients = {0};
  EXPECT_TRUE(active.hello(hello_active, Deadline::after(5.0)).accepted);
  ClientSession silent(Endpoint::parse("unix://" + path), Deadline::after(5.0));
  HelloRequest hello_silent;
  hello_silent.owned_clients = {1};
  EXPECT_TRUE(silent.hello(hello_silent, Deadline::after(5.0)).accepted);

  // The active client keeps pumping (answering PINGs); the silent one never
  // reads again — a SIGSTOP'd process as far as the server can tell.
  std::atomic<bool> stop{false};
  std::thread pumper([&] {
    while (!stop.load()) {
      try {
        (void)active.next_task(0, Deadline::after(0.05));
      } catch (const IoError&) {
        break;
      }
    }
  });
  const Deadline eviction = Deadline::after(5.0);
  while (server.is_connected(1) && !eviction.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(server.is_connected(1));
  EXPECT_TRUE(server.is_connected(0));
  stop.store(true);
  pumper.join();

  const obs::MetricsSnapshot after = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(after.counter("net.server.liveness_evictions"),
            before.counter("net.server.liveness_evictions"));
  EXPECT_GT(after.counter("net.server.pings_sent"),
            before.counter("net.server.pings_sent"));
  bool saw_left = false;
  for (const MembershipEvent& event : server.take_membership_events()) {
    if (event.kind == MembershipEvent::Kind::kLeft && event.client_id == 1) {
      saw_left = true;
    }
  }
  EXPECT_TRUE(saw_left);
  server.stop();
  ::unlink(path.c_str());
}

TEST(Backpressure, OverflowingWriteQueueEvictsTheConnection) {
  const std::string path = unique_socket_path("backpressure");
  ::unlink(path.c_str());
  EpollServer server(Endpoint::parse("unix://" + path));
  server.set_write_queue_cap(1024);
  server.start();
  const std::uint64_t before = obs::MetricsRegistry::global().snapshot().counter(
      "net.server.backpressure_evictions");

  ClientSession session(Endpoint::parse("unix://" + path), Deadline::after(5.0));
  HelloRequest request;
  request.owned_clients = {0};
  EXPECT_TRUE(session.hello(request, Deadline::after(5.0)).accepted);
  Frame task;
  task.type = FrameType::kTask;
  task.round = 0;
  task.client = 0;
  task.name = "model";
  task.body.assign(256 * 1024, 0x5A);  // far past the 1 KiB cap
  EXPECT_TRUE(server.send_task(0, std::move(task)));
  const Deadline eviction = Deadline::after(5.0);
  while (server.is_connected(0) && !eviction.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(server.is_connected(0));
  EXPECT_GT(obs::MetricsRegistry::global().snapshot().counter(
                "net.server.backpressure_evictions"),
            before);
  server.stop();
  ::unlink(path.c_str());
}

// ---- FaultyTransport (tentpole: deterministic in-library chaos) ----

TEST(FaultyTransportTest, SameSeedInjectsIdenticalFaults) {
  ScriptedTransport inner(comm::Transport::Outcome::kLocal);
  FaultyTransportOptions options;
  options.drop_rate = 0.3;
  options.seed = 42;
  FaultyTransport a(inner, options);
  FaultyTransport b(inner, options);
  for (std::size_t round = 0; round < 8; ++round) {
    for (std::size_t client = 0; client < 8; ++client) {
      std::vector<std::uint8_t> payload = {1, 2, 3};
      const auto oa = a.attempt(payload, round, client, comm::Direction::kUplink, 0, "m");
      payload = {1, 2, 3};
      const auto ob = b.attempt(payload, round, client, comm::Direction::kUplink, 0, "m");
      EXPECT_EQ(oa, ob) << "round " << round << " client " << client;
    }
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_GT(a.drops(), 0u);   // ~30% of 64 attempts
  EXPECT_LT(a.drops(), 64u);  // but not all of them
}

TEST(FaultyTransportTest, CorruptionFlipsExactlyOneByte) {
  ScriptedTransport inner(comm::Transport::Outcome::kLocal);
  FaultyTransportOptions options;
  options.corrupt_rate = 1.0;
  options.seed = 7;
  FaultyTransport faulty(inner, options);
  std::vector<std::uint8_t> payload(64, 0x11);
  const std::vector<std::uint8_t> original = payload;
  EXPECT_EQ(faulty.attempt(payload, 0, 0, comm::Direction::kDownlink, 0, "m"),
            comm::Transport::Outcome::kLocal);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(faulty.corruptions(), 1u);
}

TEST(ElasticEndToEnd, CompletesUnderInjectedDrops) {
  const FedSpec spec = tiny_spec("fedavg");
  const std::string path = unique_socket_path("elastic_drops");
  ::unlink(path.c_str());
  ElasticServerOptions server_options;
  server_options.endpoint = Endpoint::parse("unix://" + path);
  server_options.min_clients = 2;
  server_options.join_wait_seconds = 30.0;
  server_options.upload_timeout_seconds = 10.0;
  server_options.fault.drop_rate = 0.2;
  server_options.fault.seed = 11;

  fl::RunResult result;
  std::thread server([&] { result = run_elastic_server(spec, server_options); });
  std::vector<std::thread> workers;
  for (std::size_t id = 0; id < 2; ++id) {
    workers.emplace_back([&, id] {
      ElasticClientOptions options;
      options.endpoint = Endpoint::parse("unix://" + path);
      options.client_id = id;
      (void)run_elastic_client(spec, options);
    });
  }
  server.join();
  for (auto& w : workers) w.join();
  ::unlink(path.c_str());

  // Every round closes despite the injected attempt drops: lost transfers
  // retry, exhausted retries become recorded per-client drops, never aborts.
  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_GE(result.final_accuracy, 0.0);
}

// ---- Auto-reconnect (tentpole: churn-path rejoin) ----

TEST(ElasticEndToEnd, ClientAutoReconnectsAfterForcedDisconnect) {
  const FedSpec spec = tiny_spec("fedavg");
  const std::string path = unique_socket_path("reconnect");
  ::unlink(path.c_str());
  EpollServer server(Endpoint::parse("unix://" + path));
  server.start();  // default validator: accepts the worker's elastic HELLO
  const std::uint64_t rejoins_before =
      obs::MetricsRegistry::global().snapshot().counter("net.server.rejoins");

  ElasticClientResult served;
  std::thread worker([&] {
    ElasticClientOptions options;
    options.endpoint = Endpoint::parse("unix://" + path);
    options.client_id = 0;
    options.max_reconnects = 4;
    options.reconnect_backoff_seconds = 0.05;
    options.reconnect_backoff_max_seconds = 0.3;
    served = run_elastic_client(spec, options);
  });

  ASSERT_TRUE(server.wait_for_clients(1, Deadline::after(10.0)));
  core::Rng rng(1);
  const std::unique_ptr<nn::Module> model = models::build_model(spec.client_model, rng);
  const std::vector<std::uint8_t> body = comm::serialize_model(*model);

  Frame task0;
  task0.type = FrameType::kTask;
  task0.round = 0;
  task0.client = 0;
  task0.name = "model";
  task0.body = body;
  ASSERT_TRUE(server.send_task(0, std::move(task0)));
  ASSERT_TRUE(server.await_upload(0, 0, "model", Deadline::after(60.0)).has_value());

  // Sever the connection server-side; the worker must notice and rejoin
  // through the churn path on its own.
  server.disconnect_client(0);
  bool saw_left = false;
  bool saw_rejoin = false;
  const Deadline rejoin_deadline = Deadline::after(20.0);
  while (!(saw_left && saw_rejoin) && !rejoin_deadline.expired()) {
    for (const MembershipEvent& event : server.take_membership_events()) {
      if (event.kind == MembershipEvent::Kind::kLeft && event.client_id == 0) {
        saw_left = true;
      }
      if (event.kind == MembershipEvent::Kind::kJoined && event.rejoin) {
        saw_rejoin = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_left);
  ASSERT_TRUE(saw_rejoin);

  Frame task1;
  task1.type = FrameType::kTask;
  task1.round = 1;
  task1.client = 0;
  task1.name = "model";
  task1.body = body;
  ASSERT_TRUE(server.send_task(0, std::move(task1)));
  ASSERT_TRUE(server.await_upload(1, 0, "model", Deadline::after(60.0)).has_value());

  server.stop();  // BYE ends the worker's serve loop without a reconnect
  worker.join();
  ::unlink(path.c_str());

  EXPECT_EQ(served.rounds_served, 2u);
  EXPECT_EQ(served.reconnects, 1u);
  EXPECT_GT(obs::MetricsRegistry::global().snapshot().counter("net.server.rejoins"),
            rejoins_before);
}

}  // namespace
}  // namespace fedkemf::net
