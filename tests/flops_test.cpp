// FLOPs/cost model tests.  The strongest check locks flops.cpp to zoo.cpp:
// the analytic parameter count must equal the measured parameter count of a
// real instance for every architecture x width x resolution combination.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "models/flops.hpp"

namespace fedkemf::models {
namespace {

struct SpecCase {
  const char* arch;
  std::size_t image;
  double width;
  std::size_t channels;
};

class CostMatchesZoo : public ::testing::TestWithParam<SpecCase> {};

TEST_P(CostMatchesZoo, AnalyticParameterCountEqualsRealModel) {
  const auto p = GetParam();
  const ModelSpec spec{.arch = p.arch, .num_classes = 10, .in_channels = p.channels,
                       .image_size = p.image, .width_multiplier = p.width};
  const ModelCost cost = estimate_cost(spec);
  EXPECT_EQ(cost.parameter_count, parameter_count(spec))
      << spec.to_string() << " — flops.cpp walker diverged from zoo.cpp builder";
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, CostMatchesZoo,
    ::testing::Values(SpecCase{"mlp", 16, 1.0, 3}, SpecCase{"mlp", 8, 0.5, 1},
                      SpecCase{"cnn2", 28, 1.0, 1}, SpecCase{"cnn2", 16, 0.5, 3},
                      SpecCase{"resnet20", 32, 1.0, 3}, SpecCase{"resnet20", 16, 0.25, 3},
                      SpecCase{"resnet32", 32, 1.0, 3}, SpecCase{"resnet32", 16, 0.25, 3},
                      SpecCase{"resnet44", 32, 1.0, 3}, SpecCase{"vgg11", 32, 1.0, 3},
                      SpecCase{"vgg11", 16, 0.125, 3}, SpecCase{"vgg11", 8, 0.25, 3}));

TEST(ModelCost, ResNet20FullWidthFlopsMatchLiterature) {
  // Published: CIFAR ResNet-20 forward ~40.8 MFLOPs (multiply-add counted as
  // 2); our count includes BN/ReLU/shortcut overhead, so allow a band.
  const ModelSpec spec{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                       .image_size = 32, .width_multiplier = 1.0};
  const std::size_t flops = forward_flops(spec);
  EXPECT_GT(flops, 75e6);
  EXPECT_LT(flops, 100e6);  // 2*40.8M + overhead
}

TEST(ModelCost, DepthOrderingHolds) {
  auto flops_of = [](const char* arch) {
    return forward_flops(ModelSpec{.arch = arch, .num_classes = 10, .in_channels = 3,
                                   .image_size = 32, .width_multiplier = 1.0});
  };
  EXPECT_LT(flops_of("resnet20"), flops_of("resnet32"));
  EXPECT_LT(flops_of("resnet32"), flops_of("resnet44"));
  EXPECT_LT(flops_of("resnet44"), flops_of("vgg11"));
}

TEST(ModelCost, WidthScalesFlopsQuadratically) {
  const ModelSpec full{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                       .image_size = 32, .width_multiplier = 1.0};
  ModelSpec half = full;
  half.width_multiplier = 0.5;
  const double ratio = static_cast<double>(forward_flops(full)) /
                       static_cast<double>(forward_flops(half));
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(ModelCost, ResolutionScalesFlopsQuadratically) {
  const ModelSpec big{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                      .image_size = 32, .width_multiplier = 0.25};
  ModelSpec small = big;
  small.image_size = 16;
  const double ratio = static_cast<double>(forward_flops(big)) /
                       static_cast<double>(forward_flops(small));
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(ModelCost, TrainingIsThreeTimesForward) {
  const ModelSpec spec{.arch = "cnn2", .num_classes = 10, .in_channels = 1,
                       .image_size = 28, .width_multiplier = 1.0};
  const ModelCost cost = estimate_cost(spec);
  EXPECT_EQ(cost.training_flops(), 3 * cost.total_flops);
}

TEST(ModelCost, LayerBreakdownSumsToTotal) {
  const ModelSpec spec{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                       .image_size = 16, .width_multiplier = 0.25};
  const ModelCost cost = estimate_cost(spec);
  std::size_t total = 0;
  for (const LayerCost& layer : cost.layers) total += layer.flops;
  EXPECT_EQ(total, cost.total_flops);
  EXPECT_FALSE(cost.layers.empty());
  EXPECT_GT(cost.peak_activations, 0u);
}

TEST(ModelCost, UnknownArchThrows) {
  EXPECT_THROW(estimate_cost(ModelSpec{.arch = "densenet"}), std::invalid_argument);
}

}  // namespace
}  // namespace fedkemf::models
