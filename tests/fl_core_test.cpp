// Federation environment + metrics + runner plumbing.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "fl/federation.hpp"
#include "fl/metrics.hpp"
#include "fl/runner.hpp"
#include "models/zoo.hpp"

namespace fedkemf::fl {
namespace {

FederationOptions small_options() {
  FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.train_samples = 200;
  options.test_samples = 80;
  options.server_pool_samples = 40;
  options.num_clients = 5;
  options.dirichlet_alpha = 0.1;
  options.seed = 3;
  return options;
}

TEST(Federation, ConstructsConsistentEnvironment) {
  Federation fed(small_options());
  EXPECT_EQ(fed.num_clients(), 5u);
  EXPECT_EQ(fed.num_classes(), 4u);
  EXPECT_EQ(fed.train_set().size(), 200u);
  EXPECT_EQ(fed.test_set().size(), 80u);
  EXPECT_EQ(fed.server_pool().dim(0), 40u);
}

TEST(Federation, ShardsPartitionTheTrainSet) {
  Federation fed(small_options());
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t c = 0; c < fed.num_clients(); ++c) {
    for (std::size_t idx : fed.client_shard(c)) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index";
      ++total;
    }
  }
  EXPECT_EQ(total, fed.train_set().size());
}

TEST(Federation, LocalTestSetsMatchClientLabelSupport) {
  Federation fed(small_options());
  for (std::size_t c = 0; c < fed.num_clients(); ++c) {
    const auto train_hist = fed.train_set().class_histogram(fed.client_shard(c));
    const auto& local_test = fed.client_test_indices(c);
    ASSERT_FALSE(local_test.empty());
    for (std::size_t idx : local_test) {
      const std::size_t label = fed.test_set().label(idx);
      EXPECT_GT(train_hist[label], 0u)
          << "client " << c << " given test label it never trains on";
    }
  }
}

TEST(Federation, SameSeedSameEnvironment) {
  Federation a(small_options());
  Federation b(small_options());
  for (std::size_t c = 0; c < a.num_clients(); ++c) {
    EXPECT_EQ(a.client_shard(c), b.client_shard(c));
    EXPECT_EQ(a.client_test_indices(c), b.client_test_indices(c));
  }
}

TEST(Federation, DifferentSeedDifferentPartition) {
  FederationOptions options = small_options();
  Federation a(options);
  options.seed = 4;
  Federation b(options);
  bool any_diff = false;
  for (std::size_t c = 0; c < a.num_clients(); ++c) {
    if (a.client_shard(c) != b.client_shard(c)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Federation, IidPartitionOption) {
  FederationOptions options = small_options();
  options.partition = PartitionKind::kIid;
  Federation fed(options);
  const auto stats = fed.partition_stats();
  EXPECT_GT(stats.mean_labels_per_client, 3.5);  // IID sees nearly all 4 labels
}

TEST(SampleClients, RespectsRatioAndDeterminism) {
  Federation fed(small_options());
  const auto s1 = sample_clients(fed, 0, 0.4);
  const auto s2 = sample_clients(fed, 0, 0.4);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 2u);  // round(0.4 * 5)
  const auto s3 = sample_clients(fed, 1, 0.4);
  EXPECT_EQ(s3.size(), 2u);
  // Across rounds the sample should eventually differ.
  bool differs = false;
  for (std::size_t r = 1; r < 10; ++r) {
    if (sample_clients(fed, r, 0.4) != s1) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SampleClients, FullParticipationAndValidation) {
  Federation fed(small_options());
  EXPECT_EQ(sample_clients(fed, 0, 1.0).size(), 5u);
  EXPECT_EQ(sample_clients(fed, 0, 0.01).size(), 1u);  // at least one
  EXPECT_THROW(sample_clients(fed, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_clients(fed, 0, 1.5), std::invalid_argument);
}

TEST(Evaluate, RandomModelNearChance) {
  Federation fed(small_options());
  core::Rng rng(1);
  auto model = models::build_model(
      models::ModelSpec{.arch = "mlp", .num_classes = 4, .in_channels = 3,
                        .image_size = 8, .width_multiplier = 0.5},
      rng);
  const EvalResult result = evaluate(*model, fed.test_set());
  EXPECT_EQ(result.samples, 80u);
  EXPECT_NEAR(result.accuracy, 0.25, 0.2);
  EXPECT_GT(result.loss, 0.5);
}

TEST(Evaluate, RestoresTrainingMode) {
  Federation fed(small_options());
  core::Rng rng(2);
  auto model = models::build_model(
      models::ModelSpec{.arch = "mlp", .num_classes = 4, .in_channels = 3,
                        .image_size = 8, .width_multiplier = 0.5},
      rng);
  model->set_training(true);
  evaluate(*model, fed.test_set());
  EXPECT_TRUE(model->training());
}

TEST(RunResult, RoundsToAccuracy) {
  RunResult result;
  result.history = {{.round = 0, .accuracy = 0.2},
                    {.round = 1, .accuracy = 0.5},
                    {.round = 2, .accuracy = 0.4},
                    {.round = 3, .accuracy = 0.7}};
  EXPECT_EQ(result.rounds_to_accuracy(0.5).value(), 2u);
  EXPECT_EQ(result.rounds_to_accuracy(0.65).value(), 4u);
  EXPECT_FALSE(result.rounds_to_accuracy(0.9).has_value());
}

TEST(RunResult, BytesToAccuracy) {
  RunResult result;
  result.history = {{.round = 0, .accuracy = 0.2, .cumulative_bytes = 100},
                    {.round = 1, .accuracy = 0.6, .cumulative_bytes = 200}};
  EXPECT_EQ(result.bytes_to_accuracy(0.5).value(), 200u);
  EXPECT_FALSE(result.bytes_to_accuracy(0.9).has_value());
}

TEST(RunResult, ConvergenceRound) {
  RunResult result;
  result.history = {{.round = 0, .accuracy = 0.2},
                    {.round = 1, .accuracy = 0.55},
                    {.round = 2, .accuracy = 0.58},
                    {.round = 3, .accuracy = 0.56}};
  // Accuracy never improves on round 1's 0.55 by more than 0.05 afterwards.
  EXPECT_EQ(result.convergence_round(0.05), 2u);
  EXPECT_NEAR(result.convergence_accuracy(0.05), 0.55, 1e-9);
  // With a tight tolerance, convergence is only at the peak.
  EXPECT_EQ(result.convergence_round(0.001), 3u);
}

TEST(RunResult, MeanRoundBytes) {
  RunResult result;
  result.history = {{.round = 0, .round_bytes = 100}, {.round = 1, .round_bytes = 300}};
  EXPECT_DOUBLE_EQ(result.mean_round_bytes(), 200.0);
  RunResult empty;
  EXPECT_DOUBLE_EQ(empty.mean_round_bytes(), 0.0);
}

}  // namespace
}  // namespace fedkemf::fl
