// FedDF comparator tests + FedKEMF compressed-payload mode.

#include <gtest/gtest.h>

#include "fl/feddf.hpp"
#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"

namespace fedkemf::fl {
namespace {

FederationOptions tiny_federation() {
  FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.data.noise_stddev = 0.5;
  options.train_samples = 160;
  options.test_samples = 64;
  options.server_pool_samples = 48;
  options.num_clients = 4;
  options.dirichlet_alpha = 0.5;
  options.seed = 41;
  return options;
}

models::ModelSpec tiny_spec() {
  return models::ModelSpec{.arch = "mlp", .num_classes = 4, .in_channels = 3,
                           .image_size = 8, .width_multiplier = 0.25};
}

LocalTrainConfig tiny_local() {
  LocalTrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  return config;
}

TEST(FedDf, CommunicatesFullModelsLikeFedAvg) {
  Federation fed_df(tiny_federation());
  FedDf feddf(tiny_spec(), tiny_local());
  RunOptions run;
  run.rounds = 2;
  run.sample_ratio = 0.5;
  run_federated(fed_df, feddf, run);

  Federation fed_avg(tiny_federation());
  FedAvg fedavg(tiny_spec(), tiny_local());
  run_federated(fed_avg, fedavg, run);

  // FedDF's distillation is server-local; its wire traffic equals FedAvg's.
  EXPECT_EQ(fed_df.meter().total_bytes(), fed_avg.meter().total_bytes());
}

TEST(FedDf, LearnsAboveChance) {
  Federation fed(tiny_federation());
  FedDf algorithm(tiny_spec(), tiny_local());
  RunOptions run;
  run.rounds = 8;
  run.sample_ratio = 1.0;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_GT(result.best_accuracy, 0.3);
  EXPECT_EQ(result.algorithm, "FedDF");
}

TEST(FedDf, DistillationChangesTheAggregate) {
  // With distillation epochs > 0 the post-round global model must differ
  // from a pure FedAvg aggregate on the same federation/seed.
  auto final_logit = [&](bool distill) {
    Federation fed(tiny_federation());
    std::unique_ptr<FedAvg> algorithm;
    if (distill) {
      algorithm = std::make_unique<FedDf>(tiny_spec(), tiny_local());
    } else {
      algorithm = std::make_unique<FedAvg>(tiny_spec(), tiny_local());
    }
    RunOptions run;
    run.rounds = 1;
    run.sample_ratio = 1.0;
    run_federated(fed, *algorithm, run);
    return algorithm->global_model().parameters()[0]->value[0];
  };
  EXPECT_NE(final_logit(true), final_logit(false));
}

TEST(FedKemfCompressed, QuantizedExchangeCutsTrafficAndStillLearns) {
  auto run_with = [&](comm::Codec codec) {
    Federation fed(tiny_federation());
    FedKemfOptions options;
    options.knowledge_spec = tiny_spec();
    options.distill_epochs = 1;
    options.payload_codec = codec;
    FedKemf algorithm({tiny_spec()}, tiny_local(), options);
    RunOptions run;
    run.rounds = 6;
    run.sample_ratio = 1.0;
    const RunResult result = run_federated(fed, algorithm, run);
    return std::make_pair(fed.meter().total_bytes(), result.best_accuracy);
  };
  const auto [fp32_bytes, fp32_acc] = run_with(comm::Codec::kFp32);
  const auto [int8_bytes, int8_acc] = run_with(comm::Codec::kInt8);
  EXPECT_LT(static_cast<double>(int8_bytes), static_cast<double>(fp32_bytes) * 0.35);
  EXPECT_GT(int8_acc, 0.3);  // quantization must not destroy learning
  EXPECT_GT(fp32_acc, 0.3);
}

TEST(FedKemfCompressed, PayloadNameCarriesCodecTag) {
  Federation fed(tiny_federation());
  FedKemfOptions options;
  options.knowledge_spec = tiny_spec();
  options.distill_epochs = 1;
  options.payload_codec = comm::Codec::kFp16;
  FedKemf algorithm({tiny_spec()}, tiny_local(), options);
  RunOptions run;
  run.rounds = 1;
  run.sample_ratio = 0.5;
  run_federated(fed, algorithm, run);
  for (const auto& record : fed.meter().records()) {
    EXPECT_EQ(record.payload, "knowledge_net/fp16");
  }
}

}  // namespace
}  // namespace fedkemf::fl
