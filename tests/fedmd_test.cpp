// FedMD comparator tests: logits-only communication, heterogeneous fleets,
// learning progress, and payload accounting.

#include <gtest/gtest.h>

#include "core/serialize.hpp"
#include "fl/fedmd.hpp"
#include "fl/runner.hpp"

namespace fedkemf::fl {
namespace {

FederationOptions tiny_federation() {
  FederationOptions options;
  options.data = data::SyntheticSpec::cifar_like();
  options.data.image_size = 8;
  options.data.num_classes = 4;
  options.data.noise_stddev = 0.5;
  options.train_samples = 160;
  options.test_samples = 64;
  options.server_pool_samples = 64;
  options.num_clients = 4;
  options.dirichlet_alpha = 0.5;
  options.seed = 51;
  return options;
}

models::ModelSpec tiny_spec(const char* arch = "mlp") {
  return models::ModelSpec{.arch = arch, .num_classes = 4, .in_channels = 3,
                           .image_size = 8, .width_multiplier = 0.25};
}

LocalTrainConfig tiny_local() {
  LocalTrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  return config;
}

FedMdOptions tiny_options() {
  FedMdOptions options;
  options.server_student = tiny_spec();
  options.public_batch = 32;
  return options;
}

TEST(FedMd, CommunicatesOnlyLogits) {
  Federation fed(tiny_federation());
  FedMd algorithm({tiny_spec()}, tiny_local(), tiny_options());
  RunOptions run;
  run.rounds = 2;
  run.sample_ratio = 0.5;
  run_federated(fed, algorithm, run);
  // Payload per transfer: one [32, 4] logits tensor; never a model.
  const std::size_t logits_bytes =
      core::tensor_wire_size(core::Tensor(core::Shape::matrix(32, 4)));
  for (const auto& record : fed.meter().records()) {
    EXPECT_EQ(record.bytes, logits_bytes);
    EXPECT_TRUE(record.payload == "public_logits" || record.payload == "consensus_logits")
        << record.payload;
  }
  // 2 rounds x 2 sampled x (up + down).
  EXPECT_EQ(fed.meter().num_transfers(), 8u);
}

TEST(FedMd, TrafficIsTinyComparedToModelExchange) {
  Federation fed(tiny_federation());
  FedMd algorithm({tiny_spec("resnet20")}, tiny_local(), tiny_options());
  RunOptions run;
  run.rounds = 2;
  run.sample_ratio = 1.0;
  run_federated(fed, algorithm, run);
  core::Rng rng(0);
  auto model = models::build_model(tiny_spec("resnet20"), rng);
  // A single model payload dwarfs an entire FedMD round's logits traffic.
  EXPECT_LT(fed.meter().bytes_for_round(0), comm::model_wire_size(*model));
}

TEST(FedMd, LearnsAboveChance) {
  Federation fed(tiny_federation());
  FedMd algorithm({tiny_spec()}, tiny_local(), tiny_options());
  RunOptions run;
  run.rounds = 8;
  run.sample_ratio = 1.0;
  run.evaluate_client_models = true;
  const RunResult result = run_federated(fed, algorithm, run);
  // The clients' personalized models must clearly beat 4-class chance.
  EXPECT_GT(result.history.back().client_accuracy, 0.35);
  EXPECT_EQ(result.algorithm, "FedMD");
}

TEST(FedMd, SupportsHeterogeneousFleets) {
  Federation fed(tiny_federation());
  FedMd algorithm({tiny_spec("mlp"), tiny_spec("resnet20")}, tiny_local(), tiny_options());
  EXPECT_EQ(algorithm.client_spec(0).arch, "mlp");
  EXPECT_EQ(algorithm.client_spec(1).arch, "resnet20");
  RunOptions run;
  run.rounds = 2;
  run.sample_ratio = 1.0;
  const RunResult result = run_federated(fed, algorithm, run);
  EXPECT_EQ(result.rounds_completed, 2u);
  EXPECT_NE(algorithm.client_model(0), algorithm.client_model(1));
}

TEST(FedMd, ClientModelsPersistAcrossRounds) {
  Federation fed(tiny_federation());
  FedMd algorithm({tiny_spec()}, tiny_local(), tiny_options());
  algorithm.setup(fed);
  utils::ThreadPool pool(0);
  const std::size_t sampled_arr[] = {0, 1, 2, 3};
  algorithm.round(0, sampled_arr, pool);
  nn::Module* before = algorithm.client_model(0);
  algorithm.round(1, sampled_arr, pool);
  EXPECT_EQ(algorithm.client_model(0), before);
}

TEST(FedMd, RejectsEmptyPool) {
  EXPECT_THROW(FedMd({}, tiny_local(), tiny_options()), std::invalid_argument);
}

}  // namespace
}  // namespace fedkemf::fl
