// Unit tests for Shape and Tensor.

#include "core/tensor.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace fedkemf::core {
namespace {

TEST(Shape, BasicAccessors) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 4u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EmptyShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, AxisOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
}

TEST(Shape, Factories) {
  EXPECT_EQ(Shape::vector(5), (Shape{5}));
  EXPECT_EQ(Shape::matrix(2, 3), (Shape{2, 3}));
  EXPECT_EQ(Shape::nchw(1, 2, 3, 4), (Shape{1, 2, 3, 4}));
}

TEST(Tensor, ZerosAndOnes) {
  Tensor z = Tensor::zeros(Shape{3, 3});
  Tensor o = Tensor::ones(Shape{3, 3});
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(z[i], 0.0f);
    EXPECT_EQ(o[i], 1.0f);
  }
}

TEST(Tensor, FromValuesRoundTrip) {
  const float values[] = {1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::from_values(Shape{2, 3}, values);
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(1, 2), 6.0f);
}

TEST(Tensor, FromValuesSizeMismatchThrows) {
  const float values[] = {1, 2, 3};
  EXPECT_THROW(Tensor::from_values(Shape{2, 3}, values), std::invalid_argument);
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::ones(Shape{4});
  Tensor b = a;           // shares storage
  Tensor c = a.clone();   // deep copy
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_FALSE(a.shares_storage_with(c));
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 7.0f);
  EXPECT_EQ(c[0], 1.0f);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a = Tensor::ones(Shape{2, 6});
  Tensor b = a.reshaped(Shape{3, 4});
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(b.shape(), (Shape{3, 4}));
  EXPECT_THROW(a.reshaped(Shape{5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  const float av[] = {1, 2, 3, 4};
  const float bv[] = {10, 20, 30, 40};
  Tensor a = Tensor::from_values(Shape{4}, av);
  Tensor b = Tensor::from_values(Shape{4}, bv);

  Tensor sum = a.add(b);
  Tensor diff = b.sub(a);
  Tensor prod = a.mul(b);
  EXPECT_EQ(sum[2], 33.0f);
  EXPECT_EQ(diff[3], 36.0f);
  EXPECT_EQ(prod[1], 40.0f);
  // Out-of-place ops must not mutate operands.
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 10.0f);
}

TEST(Tensor, InPlaceAxpy) {
  const float av[] = {1, 2, 3};
  const float bv[] = {1, 1, 1};
  Tensor a = Tensor::from_values(Shape{3}, av);
  Tensor b = Tensor::from_values(Shape{3}, bv);
  a.add_scaled_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 1.5f);
  EXPECT_FLOAT_EQ(a[2], 3.5f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a = Tensor::ones(Shape{3});
  Tensor b = Tensor::ones(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const float v[] = {-1, 2, -3, 4};
  Tensor t = Tensor::from_values(Shape{4}, v);
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(t.squared_norm(), 30.0f);
  EXPECT_FLOAT_EQ(t.dot(t), 30.0f);
}

TEST(Tensor, ClampMin) {
  const float v[] = {-2, 0, 2};
  Tensor t = Tensor::from_values(Shape{3}, v);
  t.clamp_min_(0.0f);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 0.0f);
  EXPECT_EQ(t[2], 2.0f);
}

TEST(Tensor, AllFinite) {
  Tensor t = Tensor::ones(Shape{4});
  EXPECT_TRUE(t.all_finite());
  t[2] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.all_finite());
  t[2] = std::nanf("");
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, BoundsCheckedAccess) {
  Tensor t = Tensor::ones(Shape{2, 2});
  EXPECT_THROW(t.at(4), std::out_of_range);
  EXPECT_THROW(t.at2(2, 0), std::out_of_range);
  EXPECT_THROW(t.at4(0, 0, 0, 0), std::logic_error);  // rank 2, not 4
}

TEST(Tensor, RandomFactoriesAreDeterministic) {
  Rng rng1(3);
  Rng rng2(3);
  Tensor a = Tensor::normal(Shape{32}, rng1);
  Tensor b = Tensor::normal(Shape{32}, rng2);
  for (std::size_t i = 0; i < 32; ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Tensor, UniformFactoryRange) {
  Rng rng(4);
  Tensor t = Tensor::uniform(Shape{1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
  EXPECT_NEAR(t.mean(), 0.5f, 0.2f);
}

TEST(Tensor, SumIsStableForLargeTensors) {
  // 1M values of 0.1: float accumulation would drift; double accumulator
  // keeps it exact to ~1e-2.
  Tensor t = Tensor::full(Shape{1024 * 1024}, 0.1f);
  EXPECT_NEAR(t.sum(), 104857.6f, 15.0f);  // fp32 representation of 0.1 dominates
}

TEST(Tensor, EmptyTensorBehaviour) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 1u);  // rank-0 shape
  EXPECT_EQ(t.data(), nullptr);
}

}  // namespace
}  // namespace fedkemf::core
