// Fairness report: who does the fused model actually serve?
//
// Under Dirichlet label skew a global model can post a decent top-1 number
// while abandoning minority classes (the fairness concern the paper's
// introduction cites).  This example trains FedAvg and FedKEMF on the same
// skewed federation and prints per-class recall, balanced accuracy, and the
// worst-class floor for (a) the global/knowledge model and (b) FedKEMF's
// personalized client models on their local distributions.

#include <cstdio>

#include "core/tensor_ops.hpp"
#include "fl/class_metrics.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int clients = 8;
  int rounds = 12;
  double alpha = 0.1;
  std::size_t seed = 11;

  utils::Cli cli("fairness_report", "Per-class accuracy under label skew");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("rounds", &rounds, "communication rounds");
  cli.flag("alpha", &alpha, "Dirichlet concentration (lower = more skew)");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 12;
  fed_options.data.noise_stddev = 1.2;
  fed_options.train_samples = 900;
  fed_options.test_samples = 400;
  fed_options.num_clients = static_cast<std::size_t>(clients);
  fed_options.dirichlet_alpha = alpha;
  fed_options.seed = seed;

  models::ModelSpec spec{.arch = "resnet20",
                         .num_classes = 10,
                         .in_channels = 3,
                         .image_size = 12,
                         .width_multiplier = 0.25};
  fl::LocalTrainConfig local;
  local.epochs = 2;
  fl::RunOptions run;
  run.rounds = static_cast<std::size_t>(rounds);
  run.sample_ratio = 0.5;

  utils::Table table({"Model under test", "Top-1", "Balanced acc", "Worst-class recall"});
  auto report = [&](const std::string& label, const fl::ConfusionMatrix& matrix) {
    table.row()
        .cell(label)
        .cell(utils::format_percent(matrix.accuracy()))
        .cell(utils::format_percent(matrix.balanced_accuracy()))
        .cell(utils::format_percent(matrix.worst_class_recall()));
  };

  {
    fl::Federation federation(fed_options);
    fl::FedAvg fedavg(spec, local);
    fl::run_federated(federation, fedavg, run);
    report("FedAvg global model",
           fl::evaluate_confusion(fedavg.global_model(), federation.test_set()));
  }
  {
    fl::Federation federation(fed_options);
    fl::FedKemfOptions options;
    options.knowledge_spec = spec;
    fl::FedKemf fedkemf({spec}, local, options);
    fl::run_federated(federation, fedkemf, run);
    report("FedKEMF knowledge net",
           fl::evaluate_confusion(fedkemf.global_model(), federation.test_set()));

    // Personalized view: pool every client's local-test predictions from its
    // own model into one confusion matrix.
    fl::ConfusionMatrix personalized(federation.num_classes());
    for (std::size_t id = 0; id < federation.num_clients(); ++id) {
      nn::Module* model = fedkemf.client_model(id);
      model->set_training(false);
      for (std::size_t index : federation.client_test_indices(id)) {
        const std::size_t sample[] = {index};
        core::Tensor image = federation.test_set().gather_images(sample);
        core::Tensor logits = model->forward(image);
        std::size_t predicted = 0;
        core::argmax_rows(logits, &predicted);
        personalized.add(federation.test_set().label(index), predicted);
      }
    }
    report("FedKEMF personalized fleet (local tests)", personalized);
  }

  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("Balanced accuracy averages per-class recall; the worst-class recall is the\n"
              "fairness floor a top-1 number can hide.\n");
  return 0;
}
