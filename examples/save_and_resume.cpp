// Crash-tolerant checkpoint / resume: run a federation with per-round
// checkpointing, stop it partway ("the process died"), resume from the
// checkpoint directory in a fresh algorithm instance, and verify the resumed
// trajectory is bitwise-identical to an uninterrupted reference run.
//
// The checkpoint carries the *full* run state — global knowledge network,
// per-client private models, server optimizer momentum, reputation scores,
// Dropout Rng stream positions, the round history — not just the global
// weights, which is what makes exact continuation possible (see
// fl/checkpoint/run_state.hpp for the determinism contract).

#include <cstdio>
#include <filesystem>

#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "utils/cli.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int rounds = 8;
  int crash_after = 4;
  std::string checkpoint_dir = "/tmp/fedkemf_ckpt";
  std::size_t seed = 5;

  utils::Cli cli("save_and_resume", "Checkpoint the full run state and resume exactly");
  cli.flag("rounds", &rounds, "total communication rounds");
  cli.flag("crash-after", &crash_after, "rounds to run before the simulated crash");
  cli.flag("checkpoint", &checkpoint_dir, "checkpoint directory");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 12;
  fed_options.data.noise_stddev = 1.2;
  fed_options.train_samples = 800;
  fed_options.test_samples = 320;
  fed_options.num_clients = 8;
  fed_options.dirichlet_alpha = 0.1;
  fed_options.seed = seed;

  models::ModelSpec spec{.arch = "resnet20",
                         .num_classes = 10,
                         .in_channels = 3,
                         .image_size = 12,
                         .width_multiplier = 0.25};
  fl::LocalTrainConfig local;
  local.epochs = 2;
  fl::FedKemfOptions kemf_options;
  kemf_options.knowledge_spec = spec;

  fl::RunOptions run;
  run.rounds = static_cast<std::size_t>(rounds);
  run.sample_ratio = 0.5;

  // Reference: the uninterrupted run.
  fl::RunResult reference;
  {
    fl::Federation federation(fed_options);
    fl::FedKemf algorithm({spec}, local, kemf_options);
    reference = fl::run_federated(federation, algorithm, run);
  }

  std::filesystem::remove_all(checkpoint_dir);
  run.checkpoint_dir = checkpoint_dir;
  run.checkpoint_every = 1;

  // Phase 1: run to the "crash" with checkpointing on.
  {
    fl::Federation federation(fed_options);
    fl::FedKemf algorithm({spec}, local, kemf_options);
    fl::RunOptions first = run;
    first.rounds = static_cast<std::size_t>(crash_after);
    const fl::RunResult partial = fl::run_federated(federation, algorithm, first);
    std::printf("\"crashed\" after %d rounds at %.1f%% accuracy (checkpoints in %s)\n",
                crash_after, partial.final_accuracy * 100.0, checkpoint_dir.c_str());
  }

  // Phase 2: a fresh process — rebuild, restore the newest checkpoint, finish.
  fl::RunResult resumed;
  {
    fl::Federation federation(fed_options);
    fl::FedKemf algorithm({spec}, local, kemf_options);
    resumed = fl::resume_run(federation, algorithm, run);
  }

  std::printf("\nround  reference  resumed\n");
  bool identical = resumed.history.size() == reference.history.size();
  for (std::size_t i = 0; i < resumed.history.size(); ++i) {
    const double ref = i < reference.history.size() ? reference.history[i].accuracy : -1.0;
    const double got = resumed.history[i].accuracy;
    identical = identical && ref == got;  // bitwise: no tolerance
    std::printf("%5zu  %8.4f%%  %7.4f%%%s\n", resumed.history[i].round + 1, 100.0 * ref,
                100.0 * got, ref == got ? "" : "   <-- MISMATCH");
  }
  std::printf("\nresumed trajectory is %s the uninterrupted run\n",
              identical ? "bitwise-identical to" : "DIFFERENT from");

  std::filesystem::remove_all(checkpoint_dir);
  return identical ? 0 : 1;
}
