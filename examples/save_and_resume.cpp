// Checkpoint / resume: train a federation for a few rounds, persist the
// global knowledge network to disk (optionally quantized), then resume in a
// "new process" (fresh algorithm instance) from the checkpoint.
//
// Demonstrates comm::save_model / load_model and that the on-disk format is
// the same wire format the federation uses for transport.

#include <cstdio>

#include "comm/model_io.hpp"
#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "utils/cli.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int rounds_before = 6;
  int rounds_after = 6;
  std::string checkpoint = "/tmp/fedkemf_checkpoint.bin";
  std::string codec_name = "fp32";
  std::size_t seed = 5;

  utils::Cli cli("save_and_resume", "Checkpoint the knowledge network and resume");
  cli.flag("rounds-before", &rounds_before, "rounds before checkpointing");
  cli.flag("rounds-after", &rounds_after, "rounds after resuming");
  cli.flag("checkpoint", &checkpoint, "checkpoint file path");
  cli.flag("codec", &codec_name, "checkpoint codec: fp32 | fp16 | int8");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  comm::Codec codec = comm::Codec::kFp32;
  if (codec_name == "fp16") codec = comm::Codec::kFp16;
  if (codec_name == "int8") codec = comm::Codec::kInt8;

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 12;
  fed_options.data.noise_stddev = 1.2;
  fed_options.train_samples = 800;
  fed_options.test_samples = 320;
  fed_options.num_clients = 8;
  fed_options.dirichlet_alpha = 0.1;
  fed_options.seed = seed;

  models::ModelSpec spec{.arch = "resnet20",
                         .num_classes = 10,
                         .in_channels = 3,
                         .image_size = 12,
                         .width_multiplier = 0.25};
  fl::LocalTrainConfig local;
  local.epochs = 2;
  fl::FedKemfOptions kemf_options;
  kemf_options.knowledge_spec = spec;

  // Phase 1: train and checkpoint.
  double accuracy_at_checkpoint = 0.0;
  {
    fl::Federation federation(fed_options);
    fl::FedKemf algorithm({spec}, local, kemf_options);
    fl::RunOptions run;
    run.rounds = static_cast<std::size_t>(rounds_before);
    run.sample_ratio = 0.5;
    const fl::RunResult result = fl::run_federated(federation, algorithm, run);
    accuracy_at_checkpoint = result.final_accuracy;
    comm::save_model(algorithm.global_model(), checkpoint, codec);
    std::printf("checkpointed after %d rounds at %.1f%% accuracy (%s, %s)\n",
                rounds_before, accuracy_at_checkpoint * 100.0, checkpoint.c_str(),
                codec_name.c_str());
  }

  // Phase 2: a fresh process would do exactly this — rebuild, load, resume.
  {
    fl::Federation federation(fed_options);
    fl::FedKemf algorithm({spec}, local, kemf_options);
    algorithm.setup(federation);
    comm::load_model(checkpoint, algorithm.global_model());
    const double restored =
        fl::evaluate(algorithm.global_model(), federation.test_set()).accuracy;
    std::printf("restored checkpoint evaluates at %.1f%%\n", restored * 100.0);

    utils::ThreadPool pool(0);
    for (int round = 0; round < rounds_after; ++round) {
      const auto sampled =
          fl::sample_clients(federation, static_cast<std::size_t>(round), 0.5);
      algorithm.round(static_cast<std::size_t>(round), sampled, pool);
    }
    const double final_accuracy =
        fl::evaluate(algorithm.global_model(), federation.test_set()).accuracy;
    std::printf("after %d more rounds: %.1f%%\n", rounds_after, final_accuracy * 100.0);
  }
  std::remove(checkpoint.c_str());
  return 0;
}
