// Quickstart: run FedKEMF and FedAvg on the same small non-IID federation
// and compare accuracy and measured communication.
//
//   ./examples/quickstart [--clients 8] [--rounds 10] ...
//
// This is the 60-second tour of the library: build a Federation (synthetic
// non-IID data + metered channel), pick algorithms, call run_federated, and
// read the round-by-round history.

#include <cstdio>

#include "fl/fedavg.hpp"
#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int clients = 8;
  int rounds = 10;
  int train_samples = 1200;
  double alpha = 0.1;
  double sample_ratio = 0.5;
  std::string arch = "resnet20";
  double width = 0.25;
  int image_size = 16;
  std::size_t seed = 1;

  utils::Cli cli("quickstart", "FedKEMF vs FedAvg on a small non-IID federation");
  cli.flag("clients", &clients, "number of federated clients");
  cli.flag("rounds", &rounds, "communication rounds");
  cli.flag("train-samples", &train_samples, "total training pool size");
  cli.flag("alpha", &alpha, "Dirichlet concentration (lower = more skew)");
  cli.flag("sample-ratio", &sample_ratio, "fraction of clients per round");
  cli.flag("arch", &arch, "client/local model architecture");
  cli.flag("width", &width, "model width multiplier");
  cli.flag("image-size", &image_size, "synthetic image resolution");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  // 1. Describe the federation: data distribution, population, skew.
  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = static_cast<std::size_t>(image_size);
  fed_options.train_samples = static_cast<std::size_t>(train_samples);
  fed_options.test_samples = 400;
  fed_options.num_clients = static_cast<std::size_t>(clients);
  fed_options.dirichlet_alpha = alpha;
  fed_options.seed = seed;
  fl::Federation federation(fed_options);

  // 2. Model specs: clients train `arch`; the knowledge network that crosses
  //    the wire is a ResNet-20 (the paper's choice).
  models::ModelSpec local_spec{.arch = arch,
                               .num_classes = fed_options.data.num_classes,
                               .in_channels = fed_options.data.channels,
                               .image_size = fed_options.data.image_size,
                               .width_multiplier = width};
  models::ModelSpec knowledge_spec = local_spec;
  knowledge_spec.arch = "resnet20";

  fl::LocalTrainConfig local_config;  // defaults: 1 epoch, batch 32, SGD 0.05/0.9

  fl::RunOptions run_options;
  run_options.rounds = static_cast<std::size_t>(rounds);
  run_options.sample_ratio = sample_ratio;
  run_options.verbose = true;

  // 3. Run FedAvg, then FedKEMF, on the *same* federation.
  fl::FedAvg fedavg(local_spec, local_config);
  const fl::RunResult avg_result = fl::run_federated(federation, fedavg, run_options);

  fl::FedKemfOptions kemf_options;
  kemf_options.knowledge_spec = knowledge_spec;
  fl::FedKemf fedkemf({local_spec}, local_config, kemf_options);
  const fl::RunResult kemf_result = fl::run_federated(federation, fedkemf, run_options);

  // 4. Report.
  utils::Table table({"Algorithm", "Final acc", "Best acc", "Total comm", "Bytes/round"});
  for (const fl::RunResult* r : {&avg_result, &kemf_result}) {
    table.row()
        .cell(r->algorithm)
        .cell(utils::format_percent(r->final_accuracy))
        .cell(utils::format_percent(r->best_accuracy))
        .cell(utils::format_bytes(static_cast<double>(r->total_bytes)))
        .cell(utils::format_bytes(r->mean_round_bytes()));
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("FedKEMF moved %.1fx %s bytes than FedAvg for the same rounds.\n",
              avg_result.total_bytes >= kemf_result.total_bytes
                  ? static_cast<double>(avg_result.total_bytes) /
                        static_cast<double>(kemf_result.total_bytes)
                  : static_cast<double>(kemf_result.total_bytes) /
                        static_cast<double>(avg_result.total_bytes),
              avg_result.total_bytes >= kemf_result.total_bytes ? "fewer" : "more");
  return 0;
}
