// Byzantine clients: run defended FedKEMF against a mixed hostile population
// — label-flippers training on permuted labels, poisoners sign-flipping their
// uploads, and free-riders echoing the broadcast back — and watch the defense
// stack (upload sanitation + reputation screening + trimmed-mean fusion +
// divergence watchdog) identify and exclude them.
//
//   ./examples/byzantine_clients [--poison 0.2] [--label-flip 0.1] ...
//
// The per-round history shows how many uploads were screened out and whether
// the watchdog rolled a round back; the final table compares each client's
// ground-truth role against the reputation tracker's verdict.

#include <cstdio>

#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "sim/simulator.hpp"
#include "utils/cli.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int clients = 12;
  int rounds = 10;
  double label_flip = 0.1;
  double poison = 0.2;
  double free_rider = 0.1;
  std::size_t seed = 1;

  utils::Cli cli("byzantine_clients", "defended FedKEMF vs a mixed Byzantine population");
  cli.flag("clients", &clients, "number of federated clients");
  cli.flag("rounds", &rounds, "communication rounds");
  cli.flag("label-flip", &label_flip, "fraction of clients training on permuted labels");
  cli.flag("poison", &poison, "fraction of clients sign-flipping their uploads");
  cli.flag("free-rider", &free_rider, "fraction of clients uploading without training");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 12;
  fed_options.train_samples = 2400;
  fed_options.test_samples = 320;
  fed_options.server_pool_samples = 256;
  fed_options.num_clients = static_cast<std::size_t>(clients);
  fed_options.dirichlet_alpha = 1.0;
  fed_options.seed = seed;
  fl::Federation federation(fed_options);

  models::ModelSpec spec{.arch = "resnet20",
                         .num_classes = fed_options.data.num_classes,
                         .in_channels = fed_options.data.channels,
                         .image_size = fed_options.data.image_size,
                         .width_multiplier = 0.25};
  fl::LocalTrainConfig local;
  local.epochs = 2;
  fl::FedKemfOptions kemf;
  kemf.knowledge_spec = spec;
  kemf.ensemble = fl::EnsembleStrategy::kTrimmedMean;
  kemf.sanitize.enabled = true;
  kemf.reputation.enabled = true;
  fl::FedKemf algorithm({spec}, local, kemf);

  fl::RunOptions run;
  run.rounds = static_cast<std::size_t>(rounds);
  run.sample_ratio = 1.0;
  run.eval_every = 1;
  run.watchdog = fl::WatchdogOptions{};
  run.sim = sim::SimOptions{};
  run.sim->adversary.label_flip_fraction = label_flip;
  run.sim->adversary.poison_fraction = poison;
  run.sim->adversary.free_rider_fraction = free_rider;
  run.sim->adversary.poison_mode = sim::PoisonMode::kSignFlip;

  const fl::RunResult result = fl::run_federated(federation, algorithm, run);

  std::printf("round  acc      rejected  rolled_back\n");
  for (const fl::RoundRecord& record : result.history) {
    std::printf("%5zu  %6.2f%%  %8zu  %s\n", record.round + 1, 100.0 * record.accuracy,
                record.rejected_updates, record.rolled_back ? "yes" : "no");
  }
  std::printf("\nfinal accuracy  %.2f%% (best %.2f%%)\n", 100.0 * result.final_accuracy,
              100.0 * result.best_accuracy);
  std::printf("uploads screened out %zu, rounds rolled back %zu\n\n",
              result.total_rejected_updates, result.total_rolled_back);

  // Rebuild the runner's simulator (same options / client count / rng fork
  // tag) to recover the ground-truth role schedule, and line it up against
  // the reputation tracker's verdicts.
  sim::Simulator simulator(*run.sim, federation.num_clients(),
                           federation.root_rng().fork(0x51D07A1EULL));
  const sim::AdversaryModel& adversary = simulator.adversary();
  const fl::ReputationTracker* reputation = algorithm.reputation();

  std::printf("client  role         reputation  verdict\n");
  std::size_t caught = 0;
  for (std::size_t id = 0; id < federation.num_clients(); ++id) {
    const bool excluded = reputation != nullptr && reputation->excluded(id);
    if (excluded && adversary.adversarial(id)) ++caught;
    std::printf("%6zu  %-11s  %10.3f  %s\n", id, sim::to_string(adversary.role(id)),
                reputation != nullptr ? reputation->score(id) : 1.0,
                excluded ? "excluded" : "trusted");
  }
  std::printf("\nreputation excluded %zu of %zu adversaries\n", caught,
              adversary.num_adversaries());
  std::printf("(stale-broadcast free-riders upload the unmodified global model, so they\n"
              " agree with the fused ensemble by construction — reputation cannot flag\n"
              " them, only contribution-based accounting could)\n");
  return 0;
}
