// Centralized upper bound: train one model on the pooled data, no federation.
//
// Table 2 of the paper frames convergence accuracy against "a hypothetical
// centralized case where images are heterogeneously distributed" — this
// binary produces that reference number for any model/data configuration, and
// doubles as a sanity check that the synthetic task is learnable at all.

#include <cstdio>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "fl/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "utils/cli.hpp"
#include "utils/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int epochs = 20;
  int train_samples = 1200;
  int test_samples = 400;
  int batch_size = 32;
  double lr = 0.05;
  double noise = 0.8;
  double separation = 1.0;
  std::string arch = "resnet20";
  double width = 0.25;
  int image_size = 16;
  std::size_t seed = 1;

  utils::Cli cli("centralized_upper_bound", "Non-federated training reference");
  cli.flag("epochs", &epochs, "training epochs");
  cli.flag("train-samples", &train_samples, "training pool size");
  cli.flag("test-samples", &test_samples, "test set size");
  cli.flag("batch-size", &batch_size, "minibatch size");
  cli.flag("lr", &lr, "SGD learning rate");
  cli.flag("noise", &noise, "synthetic pixel noise stddev");
  cli.flag("separation", &separation, "synthetic class separation");
  cli.flag("arch", &arch, "model architecture");
  cli.flag("width", &width, "width multiplier");
  cli.flag("image-size", &image_size, "image resolution");
  cli.flag("seed", &seed, "seed");
  cli.parse(argc, argv);

  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like();
  spec.image_size = static_cast<std::size_t>(image_size);
  spec.noise_stddev = noise;
  spec.class_separation = separation;
  spec.seed = seed;
  const data::Dataset train =
      data::make_synthetic_dataset(spec, static_cast<std::size_t>(train_samples),
                                   data::kTrainSplit);
  const data::Dataset test =
      data::make_synthetic_dataset(spec, static_cast<std::size_t>(test_samples),
                                   data::kTestSplit);

  models::ModelSpec model_spec{.arch = arch,
                               .num_classes = spec.num_classes,
                               .in_channels = spec.channels,
                               .image_size = spec.image_size,
                               .width_multiplier = width};
  core::Rng rng(seed);
  auto model = models::build_model(model_spec, rng);
  std::printf("model %s: %zu parameters\n", model_spec.to_string().c_str(),
              model->parameter_count());

  nn::Sgd optimizer(model->parameters(),
                    {.learning_rate = lr, .momentum = 0.9, .weight_decay = 5e-4});
  nn::SoftmaxCrossEntropy ce;
  data::DataLoader loader(train, static_cast<std::size_t>(batch_size), /*shuffle=*/true,
                          rng.fork(7));

  utils::Stopwatch clock;
  data::Batch batch;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    model->set_training(true);
    loader.reset();
    double loss_total = 0.0;
    std::size_t batches = 0;
    while (loader.next(batch)) {
      optimizer.zero_grad();
      core::Tensor logits = model->forward(batch.images);
      nn::LossResult loss = ce.compute(logits, batch.labels);
      model->backward(loss.grad);
      optimizer.step();
      loss_total += loss.value;
      ++batches;
    }
    const fl::EvalResult eval = fl::evaluate(*model, test);
    std::printf("epoch %2d  train_loss=%.4f  test_acc=%.2f%%  (%.1fs)\n", epoch,
                loss_total / static_cast<double>(batches), eval.accuracy * 100.0,
                clock.seconds());
  }
  return 0;
}
