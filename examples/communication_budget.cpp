// Communication budget planner: given an edge uplink (bandwidth/latency) and
// a byte budget per client, how far does each FL algorithm get?
//
// Demonstrates the comm substrate's measured accounting and the LinkModel:
// every algorithm trains until its *measured* traffic exhausts the budget,
// then reports accuracy reached and simulated transfer time.

#include <cstdio>

#include "fl/fedavg.hpp"
#include "fl/fedkemf.hpp"
#include "fl/fednova.hpp"
#include "fl/fedprox.hpp"
#include "fl/runner.hpp"
#include "fl/scaffold.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  double budget_mb = 30.0;
  double bandwidth_mbps = 20.0;
  int clients = 8;
  int max_rounds = 40;
  std::size_t seed = 3;

  utils::Cli cli("communication_budget",
                 "Compare FL algorithms under a fixed communication budget");
  cli.flag("budget-mb", &budget_mb, "total federation traffic budget in MB");
  cli.flag("bandwidth-mbps", &bandwidth_mbps, "edge link bandwidth (Mbit/s)");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("max-rounds", &max_rounds, "hard round cap");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 16;
  fed_options.data.noise_stddev = 1.2;
  fed_options.train_samples = 1000;
  fed_options.test_samples = 400;
  fed_options.num_clients = static_cast<std::size_t>(clients);
  fed_options.dirichlet_alpha = 0.1;
  fed_options.seed = seed;

  models::ModelSpec local_spec{.arch = "resnet32",
                               .num_classes = 10,
                               .in_channels = 3,
                               .image_size = 16,
                               .width_multiplier = 0.25};
  models::ModelSpec knowledge_spec = local_spec;
  knowledge_spec.arch = "resnet20";
  fl::LocalTrainConfig local;
  local.epochs = 2;

  const double budget_bytes = budget_mb * 1024.0 * 1024.0;
  comm::LinkModel link{.bandwidth_bytes_per_second = bandwidth_mbps * 1e6 / 8.0,
                       .latency_seconds = 0.04};

  utils::Table table({"Algorithm", "Rounds in budget", "Traffic used", "Accuracy",
                      "Sim. transfer time"});

  auto run_budgeted = [&](const std::string& label,
                          std::unique_ptr<fl::Algorithm> algorithm) {
    fl::Federation federation(fed_options);
    algorithm->setup(federation);
    utils::ThreadPool pool(0);
    double accuracy = 0.0;
    std::size_t rounds = 0;
    while (rounds < static_cast<std::size_t>(max_rounds)) {
      const auto sampled = fl::sample_clients(federation, rounds, 0.5);
      algorithm->round(rounds, sampled, pool);
      ++rounds;
      if (static_cast<double>(federation.meter().total_bytes()) >= budget_bytes) break;
    }
    accuracy = fl::evaluate(algorithm->global_model(), federation.test_set()).accuracy;
    const std::size_t used = federation.meter().total_bytes();
    table.row()
        .cell(label)
        .cell(static_cast<std::int64_t>(rounds))
        .cell(utils::format_bytes(static_cast<double>(used)))
        .cell(utils::format_percent(accuracy))
        .cell(std::to_string(static_cast<int>(link.transfer_seconds(used))) + "s");
  };

  run_budgeted("FedAvg", std::make_unique<fl::FedAvg>(local_spec, local));
  run_budgeted("FedProx", std::make_unique<fl::FedProx>(local_spec, local, 0.01));
  run_budgeted("FedNova", std::make_unique<fl::FedNova>(local_spec, local));
  run_budgeted("SCAFFOLD", std::make_unique<fl::Scaffold>(local_spec, local));
  {
    fl::FedKemfOptions options;
    options.knowledge_spec = knowledge_spec;
    run_budgeted("FedKEMF",
                 std::make_unique<fl::FedKemf>(std::vector<models::ModelSpec>{local_spec},
                                               local, options));
  }

  std::printf("\nBudget: %.0f MB of federation traffic, %0.f Mbit/s uplink\n\n%s\n",
              budget_mb, bandwidth_mbps, table.to_markdown().c_str());
  return 0;
}
