// Lossy network: run FedKEMF over the network-realism simulator — every
// client gets its own bandwidth/latency/compute profile, devices drop out of
// rounds, payloads are lost or corrupted in flight (caught by the wire
// format's CRC32 and retried), and a round deadline turns slow clients into
// stragglers that the server aggregates without.
//
//   ./examples/lossy_network [--dropout 0.2] [--deadline 30] ...
//
// The printed per-round history shows how many of each cohort completed,
// dropped, or straggled, plus the simulated wall-clock each round consumed.
//
// Observability hooks:
//   --telemetry run.jsonl   stream one JSON record per round (phase timings,
//                           traffic, cohort fate) plus a closing run summary
//   --trace trace.json      export a chrome://tracing / Perfetto timeline of
//                           the whole run
//
// Crash tolerance:
//   --checkpoint DIR        checkpoint the full run state to DIR every
//                           --checkpoint-every rounds; when DIR already holds
//                           a checkpoint the run resumes from it, bitwise-
//                           identically to the uninterrupted trajectory.
//                           SIGINT/SIGTERM finish the current round, write a
//                           final checkpoint, and exit cleanly.
//   FEDKEMF_CRASH_PHASE / FEDKEMF_CRASH_ROUND (env)
//                           arm the crash-injection harness: die abruptly at
//                           the named phase boundary (tools/crash_recovery.py
//                           drives the kill-restart-verify loop).

#include <cstdio>
#include <limits>

#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "obs/trace.hpp"
#include "sim/crash.hpp"
#include "sim/simulator.hpp"
#include "utils/cli.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int clients = 8;
  int rounds = 10;
  double sample_ratio = 0.75;
  double dropout = 0.2;
  double failure = 0.05;
  double drop_prob = 0.05;
  double corrupt_prob = 0.05;
  double deadline = 0.0;  // 0 = no deadline
  double adversary_fraction = 0.0;
  double churn = 0.0;        // per-round leave probability; 0 = frozen fleet
  double stale_alpha = -1.0; // < 0 = discard stragglers (historical policy)
  std::size_t seed = 1;
  std::string telemetry_path;
  std::string trace_path;
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_retain = 3;

  utils::Cli cli("lossy_network", "FedKEMF on an unreliable, heterogeneous network");
  cli.flag("clients", &clients, "number of federated clients");
  cli.flag("rounds", &rounds, "communication rounds");
  cli.flag("sample-ratio", &sample_ratio, "fraction of clients per round");
  cli.flag("dropout", &dropout, "probability a sampled client is offline for a round");
  cli.flag("failure", &failure, "probability a client dies mid-round");
  cli.flag("drop-prob", &drop_prob, "per-attempt payload loss probability");
  cli.flag("corrupt-prob", &corrupt_prob, "per-attempt payload corruption probability");
  cli.flag("deadline", &deadline, "round deadline in simulated seconds (0 = none)");
  cli.flag("adversary-fraction", &adversary_fraction,
           "fraction of clients that sign-flip their uploads");
  cli.flag("churn", &churn,
           "per-round probability a client leaves (leavers rejoin with prob 0.5)");
  cli.flag("stale-alpha", &stale_alpha,
           "staleness discount exponent for late uploads (< 0 = discard stragglers)");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("telemetry", &telemetry_path, "write per-round JSONL telemetry to this path");
  cli.flag("trace", &trace_path, "export a chrome://tracing JSON to this path");
  cli.flag("checkpoint", &checkpoint_dir,
           "checkpoint directory (resumes automatically when it holds one)");
  cli.flag("checkpoint-every", &checkpoint_every, "rounds between checkpoints");
  cli.flag("checkpoint-retain", &checkpoint_retain, "checkpoints to keep on disk");
  cli.parse(argc, argv);

  if (!trace_path.empty()) obs::set_trace_enabled(true);
  sim::CrashInjector::instance().arm_from_env();
  fl::install_shutdown_handler();

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 12;
  fed_options.train_samples = 1000;
  fed_options.test_samples = 320;
  fed_options.server_pool_samples = 256;
  fed_options.num_clients = static_cast<std::size_t>(clients);
  fed_options.dirichlet_alpha = 0.1;
  fed_options.seed = seed;
  fl::Federation federation(fed_options);

  models::ModelSpec spec{.arch = "resnet20",
                         .num_classes = fed_options.data.num_classes,
                         .in_channels = fed_options.data.channels,
                         .image_size = fed_options.data.image_size,
                         .width_multiplier = 0.25};
  fl::LocalTrainConfig local;
  local.epochs = 2;
  fl::FedKemfOptions kemf;
  kemf.knowledge_spec = spec;
  fl::FedKemf algorithm({spec}, local, kemf);

  fl::RunOptions run;
  run.rounds = static_cast<std::size_t>(rounds);
  run.sample_ratio = sample_ratio;
  run.eval_every = 1;
  run.sim = sim::SimOptions{};
  run.sim->network.dropout_prob = dropout;
  run.sim->network.mid_round_failure_prob = failure;
  run.sim->faults.drop_prob = drop_prob;
  run.sim->faults.corrupt_prob = corrupt_prob;
  run.sim->deadline_seconds =
      deadline > 0.0 ? deadline : std::numeric_limits<double>::infinity();
  run.sim->adversary.poison_fraction = adversary_fraction;
  run.sim->adversary.poison_mode = sim::PoisonMode::kSignFlip;
  if (churn > 0.0) {
    run.sim->churn.leave_prob = churn;
    run.sim->churn.rejoin_prob = 0.5;
  }
  if (stale_alpha >= 0.0) {
    run.staleness = fl::StalenessOptions{.alpha = stale_alpha};
  }
  run.telemetry_path = telemetry_path;
  run.checkpoint_dir = checkpoint_dir;
  run.checkpoint_every = static_cast<std::size_t>(checkpoint_every);
  run.checkpoint_retain = static_cast<std::size_t>(checkpoint_retain);

  const bool resuming = fl::can_resume(run);
  if (resuming) std::printf("resuming from checkpoint dir %s\n", checkpoint_dir.c_str());
  const fl::RunResult result = resuming ? fl::resume_run(federation, algorithm, run)
                                        : fl::run_federated(federation, algorithm, run);
  if (result.interrupted) {
    std::printf("interrupted by signal after round %zu%s\n", result.rounds_completed,
                checkpoint_dir.empty() ? "" : " (checkpoint written; rerun to resume)");
  }

  std::printf("round  acc      completed  dropped  straggled  sim_seconds\n");
  for (const fl::RoundRecord& record : result.history) {
    std::printf("%5zu  %6.2f%%  %4zu/%zu     %7zu  %9zu  %11.2f\n", record.round + 1,
                100.0 * record.accuracy, record.clients_completed,
                record.clients_sampled, record.clients_dropped,
                record.clients_straggled, record.sim_seconds);
  }
  std::printf("\nfinal accuracy  %.2f%% (best %.2f%%)\n", 100.0 * result.final_accuracy,
              100.0 * result.best_accuracy);
  std::printf("clients dropped %zu, stragglers %zu across %zu rounds\n",
              result.total_dropped, result.total_stragglers, result.rounds_completed);
  if (churn > 0.0 || stale_alpha >= 0.0) {
    std::printf("elastic fleet   %zu joins, %zu departures, %zu stale updates applied\n",
                result.total_joined, result.total_left, result.total_stale_applied);
  }
  std::printf("simulated time  %.1f s; measured traffic %.2f MB\n", result.sim_seconds,
              static_cast<double>(result.total_bytes) / (1024.0 * 1024.0));
  std::printf("\ncompute vs eval wall-clock per round\n%s\n",
              fl::history_table(result).to_markdown().c_str());
  if (!telemetry_path.empty()) {
    std::printf("telemetry JSONL -> %s\n", telemetry_path.c_str());
  }
  if (!trace_path.empty()) {
    if (obs::trace_export(trace_path)) {
      std::printf("trace (%zu events) -> %s  [load in chrome://tracing or ui.perfetto.dev]\n",
                  obs::trace_event_count(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
    }
  }
  return 0;
}
