// Heterogeneous fleet: the paper's headline scenario.
//
// Three edge resource classes (phone / gateway / workstation) get three
// different architectures (ResNet-20 / ResNet-32 / ResNet-44).  FedKEMF
// trains them all in one federation — only the tiny knowledge network crosses
// the wire — and every client ends up with a personalized model evaluated on
// its own local distribution.

#include <cstdio>

#include "fl/fedkemf.hpp"
#include "fl/runner.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  int clients = 9;
  int rounds = 12;
  double alpha = 0.1;
  double width = 0.25;
  std::size_t seed = 7;

  utils::Cli cli("heterogeneous_fleet",
                 "FedKEMF with a ResNet-20/32/44 multi-model federation");
  cli.flag("clients", &clients, "number of clients (split across 3 resource classes)");
  cli.flag("rounds", &rounds, "communication rounds");
  cli.flag("alpha", &alpha, "Dirichlet concentration (data skew)");
  cli.flag("width", &width, "model width multiplier");
  cli.flag("seed", &seed, "experiment seed");
  cli.parse(argc, argv);

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 16;
  fed_options.data.noise_stddev = 1.2;
  fed_options.train_samples = 1200;
  fed_options.test_samples = 400;
  fed_options.num_clients = static_cast<std::size_t>(clients);
  fed_options.dirichlet_alpha = alpha;
  fed_options.seed = seed;
  fl::Federation federation(fed_options);

  auto spec = [&](const char* arch) {
    return models::ModelSpec{.arch = arch,
                             .num_classes = fed_options.data.num_classes,
                             .in_channels = fed_options.data.channels,
                             .image_size = fed_options.data.image_size,
                             .width_multiplier = width};
  };

  // Client i gets zoo[i % 3]: the resource class assignment.
  std::vector<models::ModelSpec> zoo = {spec("resnet20"), spec("resnet32"),
                                        spec("resnet44")};
  fl::FedKemfOptions kemf_options;
  kemf_options.knowledge_spec = spec("resnet20");

  fl::LocalTrainConfig local;
  local.epochs = 2;

  fl::FedKemf algorithm(zoo, local, kemf_options);
  fl::RunOptions run;
  run.rounds = static_cast<std::size_t>(rounds);
  run.sample_ratio = 1.0;
  run.eval_every = 4;
  run.evaluate_client_models = true;
  run.verbose = true;
  const fl::RunResult result = fl::run_federated(federation, algorithm, run);

  utils::Table table({"Client", "Deployed model", "Shard size", "Local test acc"});
  for (std::size_t id = 0; id < federation.num_clients(); ++id) {
    nn::Module* model = algorithm.client_model(id);
    const fl::EvalResult eval = fl::evaluate_subset(*model, federation.test_set(),
                                                    federation.client_test_indices(id));
    table.row()
        .cell(static_cast<std::int64_t>(id))
        .cell(algorithm.client_spec(id).arch)
        .cell(static_cast<std::int64_t>(federation.client_shard(id).size()))
        .cell(utils::format_percent(eval.accuracy));
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("Mean per-client accuracy: %s | global knowledge net: %s | traffic: %s\n",
              utils::format_percent(result.history.back().client_accuracy).c_str(),
              utils::format_percent(result.final_accuracy).c_str(),
              utils::format_bytes(static_cast<double>(result.total_bytes)).c_str());
  return 0;
}
