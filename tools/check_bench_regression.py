#!/usr/bin/env python3
"""Perf-regression gate: diff bench JSON runs against checked-in baselines.

Both files use google-benchmark's JSON output shape (a "context" object plus a
"benchmarks" array with name/real_time/time_unit entries) — bench_kernels
emits it natively via --benchmark_out, and the standalone harnesses emit the
same shape through BenchReport (bench/bench_common.hpp).

CI runners and the machine that recorded the baseline differ in raw speed, so
absolute times are meaningless.  Instead every benchmark's current/baseline
ratio is normalized by the *median* ratio across all shared benchmarks: a
uniformly slower machine shifts every ratio equally and normalizes away, while
a genuine regression in one kernel sticks out against its peers.  A benchmark
fails when its normalized ratio exceeds 1 + threshold (default 30%).

Benchmarks present in only one of the two files (a freshly added bench with no
baseline yet, or a retired bench still in the baseline) are warned about and
skipped — a one-sided name is a bookkeeping gap, not a perf regression, and
must not break CI.

Invocation: either one positional BASELINE CURRENT pair (the historical
form), or any number of repeated `--compare BASELINE CURRENT` pairs so CI can
gate every suite in a single run instead of one process per suite.  Every
comparison is evaluated even after one fails; the worst exit code wins.

Exit codes: 0 ok (including nothing comparable), 1 regression found,
2 unreadable/unusable input file.
"""

from __future__ import annotations

import argparse
import json
import sys

# Time-unit multipliers to nanoseconds; non-time units (e.g. "bytes" rows from
# BenchReport) are compared as-is, which is fine since we only ever form
# current/baseline ratios of the same benchmark.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path: str) -> dict[str, float]:
    """Returns {benchmark name: real_time in its file's base unit}."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        raise SystemExit(2)
    out: dict[str, float] = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name")
        time = entry.get("real_time")
        if name is None or time is None or time <= 0:
            continue
        # With --benchmark_repetitions google-benchmark appends aggregate rows
        # (mean/median/stddev/cv).  Keep only the median, stripped back to the
        # plain benchmark name; it lands after the per-repetition rows, so the
        # dict assignment below naturally prefers it.  Non-median aggregates
        # are dropped.
        if entry.get("run_type") == "aggregate":
            aggregate = entry.get("aggregate_name", "")
            if aggregate != "median":
                continue
            if name.endswith("_" + aggregate):
                name = name[: -len(aggregate) - 1]
        out[name] = float(time) * _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
    if not out:
        print(f"error: {path} contains no usable benchmark entries", file=sys.stderr)
        raise SystemExit(2)
    return out


def compare(baseline_path: str, current_path: str, threshold: float) -> int:
    """One baseline/current comparison; returns the exit code for this pair."""
    baseline = load_benchmarks(baseline_path)
    current = load_benchmarks(current_path)
    shared = sorted(set(baseline) & set(current))

    # One-sided benchmarks are a bookkeeping gap (new bench without a recorded
    # baseline, or a retired one still recorded), never a perf regression:
    # warn and skip them rather than failing the gate.
    only_baseline = sorted(set(baseline) - set(current))
    if only_baseline:
        print(
            f"warning: {len(only_baseline)} baseline benchmark(s) missing from "
            f"the current run, skipped: {', '.join(only_baseline)}",
            file=sys.stderr,
        )
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(
            f"warning: {len(only_current)} current benchmark(s) have no baseline "
            f"entry, skipped (re-record the baseline to cover them): "
            f"{', '.join(only_current)}",
            file=sys.stderr,
        )
    if not shared:
        print(
            "warning: the two files share no benchmark names; nothing to compare",
            file=sys.stderr,
        )
        return 0

    ratios = {name: current[name] / baseline[name] for name in shared}
    ordered = sorted(ratios.values())
    mid = len(ordered) // 2
    median = (
        ordered[mid]
        if len(ordered) % 2
        else 0.5 * (ordered[mid - 1] + ordered[mid])
    )

    print(
        f"{len(shared)} shared benchmarks; median current/baseline ratio "
        f"{median:.3f} (machine-speed factor, normalized away)"
    )
    width = max(len(name) for name in shared)
    failures = []
    for name in shared:
        normalized = ratios[name] / median
        verdict = "ok"
        if normalized > 1.0 + threshold:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {name:<{width}}  raw x{ratios[name]:6.3f}  "
              f"normalized x{normalized:6.3f}  {verdict}")

    if failures:
        print(
            f"FAIL: {len(failures)} benchmark(s) regressed more than "
            f"{100 * threshold:.0f}% after machine normalization: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: no benchmark regressed more than {100 * threshold:.0f}%")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="checked-in baseline BENCH json")
    parser.add_argument("current", nargs="?", help="freshly produced BENCH json")
    parser.add_argument(
        "--compare",
        nargs=2,
        action="append",
        default=[],
        metavar=("BASELINE", "CURRENT"),
        help="an extra baseline/current pair; repeatable, so one invocation "
        "gates every suite",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated normalized slowdown (0.30 = 30%%)",
    )
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    if (args.baseline is None) != (args.current is None):
        parser.error("positional baseline and current must be given together")

    pairs: list[tuple[str, str]] = []
    if args.baseline is not None:
        pairs.append((args.baseline, args.current))
    pairs.extend((baseline, current) for baseline, current in args.compare)
    if not pairs:
        parser.error("give a positional baseline/current pair or --compare")

    # Evaluate every pair even after a failure so one CI run reports every
    # regressed suite at once; the worst exit code wins.
    worst = 0
    for index, (baseline_path, current_path) in enumerate(pairs):
        if len(pairs) > 1:
            prefix = "\n" if index else ""
            print(f"{prefix}== {baseline_path} vs {current_path} ==")
        try:
            worst = max(worst, compare(baseline_path, current_path, args.threshold))
        except SystemExit as err:
            worst = max(worst, err.code if isinstance(err.code, int) else 2)
    return worst


if __name__ == "__main__":
    sys.exit(main())
