#pragma once

// Shared CLI surface of fed_server / fed_client.  Both binaries must build
// the *identical* net::FedSpec from the identical flags — HELLO carries an
// FNV-1a digest of the spec and the server rejects any client whose flags
// disagree, so every federation flag lives here exactly once.

#include <cstddef>
#include <string>

#include "net/service.hpp"
#include "utils/cli.hpp"

namespace fedkemf::tools {

struct SpecFlags {
  std::string algorithm = "fedavg";
  std::size_t clients = 8;
  std::size_t rounds = 3;
  std::size_t train_samples = 512;
  std::size_t test_samples = 256;
  double alpha = 0.1;
  double sample_ratio = 1.0;
  std::string selector = "uniform";
  std::size_t eval_every = 1;
  std::string arch = "cnn2";
  std::string knowledge_arch = "cnn2";
  double width = 0.25;
  std::size_t image_size = 12;
  std::size_t epochs = 1;
  std::size_t batch = 32;
  double lr = 0.05;
  double fedprox_mu = 0.01;
  double stale_alpha = 1.0;
  std::size_t seed = 1;
  std::size_t threads = 0;
};

inline void register_spec_flags(utils::Cli& cli, SpecFlags& f) {
  cli.flag("algorithm", &f.algorithm,
           "fedavg|fedprox|fednova|scaffold|fedkemf|feddf|fedmd");
  cli.flag("clients", &f.clients, "federated client population");
  cli.flag("rounds", &f.rounds, "communication rounds");
  cli.flag("train-samples", &f.train_samples, "total training pool size");
  cli.flag("test-samples", &f.test_samples, "global test set size");
  cli.flag("alpha", &f.alpha, "Dirichlet concentration (lower = more skew)");
  cli.flag("sample-ratio", &f.sample_ratio, "fraction of clients per round");
  cli.flag("selector", &f.selector, "client selector (uniform|...)");
  cli.flag("eval-every", &f.eval_every, "evaluate every N rounds");
  cli.flag("arch", &f.arch, "client model architecture");
  cli.flag("knowledge-arch", &f.knowledge_arch,
           "knowledge network (fedkemf) / server student (fedmd)");
  cli.flag("width", &f.width, "model width multiplier");
  cli.flag("image-size", &f.image_size, "synthetic image resolution");
  cli.flag("epochs", &f.epochs, "local epochs per round");
  cli.flag("batch", &f.batch, "local batch size");
  cli.flag("lr", &f.lr, "local learning rate");
  cli.flag("fedprox-mu", &f.fedprox_mu, "FedProx proximal strength");
  cli.flag("stale-alpha", &f.stale_alpha, "staleness discount exponent (elastic)");
  cli.flag("seed", &f.seed, "experiment seed (must match across processes)");
  cli.flag("threads", &f.threads, "local-training worker threads (0 = inline)");
}

inline net::FedSpec to_spec(const SpecFlags& f) {
  net::FedSpec spec;
  spec.algorithm = f.algorithm;
  spec.federation.data = data::SyntheticSpec::cifar_like();
  spec.federation.data.image_size = f.image_size;
  spec.federation.train_samples = f.train_samples;
  spec.federation.test_samples = f.test_samples;
  spec.federation.num_clients = f.clients;
  spec.federation.dirichlet_alpha = f.alpha;
  spec.federation.seed = f.seed;
  spec.client_model = {.arch = f.arch,
                       .num_classes = spec.federation.data.num_classes,
                       .in_channels = spec.federation.data.channels,
                       .image_size = spec.federation.data.image_size,
                       .width_multiplier = f.width};
  spec.knowledge_model = spec.client_model;
  spec.knowledge_model.arch = f.knowledge_arch;
  spec.local.epochs = f.epochs;
  spec.local.batch_size = f.batch;
  spec.local.learning_rate = f.lr;
  spec.rounds = f.rounds;
  spec.sample_ratio = f.sample_ratio;
  spec.selector = f.selector;
  spec.eval_every = f.eval_every;
  spec.num_threads = f.threads;
  spec.fedprox_mu = f.fedprox_mu;
  spec.staleness.alpha = f.stale_alpha;
  return spec;
}

}  // namespace fedkemf::tools
