#!/usr/bin/env python3
"""Kill-restart-verify loop for the checkpoint/restore subsystem.

For every telemetry phase boundary (local_train, upload, sanitize, fuse,
distill, eval) this driver:

  1. runs a reference federation to completion (no crash) and records its
     evaluated per-round accuracy history from the telemetry JSONL;
  2. reruns the same configuration with the crash injector armed at that
     phase (FEDKEMF_CRASH_PHASE / FEDKEMF_CRASH_ROUND), expecting the process
     to die abruptly with the injector's exit code (42);
  3. restarts the binary with the same flags — it resumes from the newest
     valid checkpoint — repeating until the run completes (multi-kill runs
     arm a later round on each restart);
  4. verifies the stitched telemetry's evaluated accuracy history is
     *bitwise-identical* to the reference (exact float comparison via the
     JSON round-trip, no tolerance).

A resumed run re-executes the killed round from its last checkpoint, so the
stitched telemetry can record a round twice; rounds are deduplicated keeping
the last occurrence, which the resume-marker lines make auditable.

Exit codes: 0 all phases verified, 1 any mismatch/unexpected exit.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

PHASES = ["local_train", "upload", "sanitize", "fuse", "distill", "eval"]
CRASH_EXIT_CODE = 42  # sim::CrashInjector::kCrashExitCode


def evaluated_accuracies(telemetry_path: str) -> dict[int, float]:
    """Evaluated rounds' accuracy, deduplicated keeping the last occurrence."""
    accuracies: dict[int, float] = {}
    with open(telemetry_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "round" and record.get("evaluated"):
                accuracies[int(record["round"])] = record["accuracy"]
    return accuracies


def run(binary: str, flags: list[str], telemetry: str, checkpoint: str | None,
        env_extra: dict[str, str] | None = None) -> int:
    command = [binary, *flags, "--telemetry", telemetry]
    if checkpoint is not None:
        command += ["--checkpoint", checkpoint]
    env = dict(os.environ)
    env.pop("FEDKEMF_CRASH_PHASE", None)
    env.pop("FEDKEMF_CRASH_ROUND", None)
    env.update(env_extra or {})
    result = subprocess.run(command, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL, check=False)
    return result.returncode


def verify_phase(binary: str, flags: list[str], phase: str, crash_round: int,
                 reference: dict[int, float], workdir: str,
                 max_restarts: int) -> bool:
    checkpoint = os.path.join(workdir, f"ckpt_{phase}")
    telemetry = os.path.join(workdir, f"telemetry_{phase}.jsonl")

    code = run(binary, flags, telemetry, checkpoint,
               {"FEDKEMF_CRASH_PHASE": phase, "FEDKEMF_CRASH_ROUND": str(crash_round)})
    if code != CRASH_EXIT_CODE:
        print(f"  {phase}: expected the injected crash (exit {CRASH_EXIT_CODE}), "
              f"got exit {code}", file=sys.stderr)
        return False

    for _ in range(max_restarts):
        code = run(binary, flags, telemetry, checkpoint)
        if code == 0:
            break
        print(f"  {phase}: restart exited {code}", file=sys.stderr)
        return False
    else:
        print(f"  {phase}: run did not complete within {max_restarts} restarts",
              file=sys.stderr)
        return False

    stitched = evaluated_accuracies(telemetry)
    if stitched != reference:
        print(f"  {phase}: MISMATCH\n    reference: {reference}\n"
              f"    stitched : {stitched}", file=sys.stderr)
        return False
    print(f"  {phase}: killed at round {crash_round}, resumed, history identical "
          f"({len(stitched)} evaluated rounds)")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("binary", help="path to the lossy_network example binary")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--crash-round", type=int, default=3,
                        help="0-based round the kill point arms at")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--phases", nargs="*", default=PHASES,
                        choices=PHASES, help="phase boundaries to kill at")
    parser.add_argument("--extra-flag", action="append", default=[],
                        help="additional flag passed to the binary (repeatable), "
                             "e.g. --extra-flag=--adversary-fraction=0.25")
    parser.add_argument("--churn", action="store_true",
                        help="run the elastic-federation configuration: client "
                             "churn, a round deadline, and staleness-aware "
                             "aggregation of the resulting late uploads")
    parser.add_argument("--max-restarts", type=int, default=4)
    args = parser.parse_args()

    if not os.path.exists(args.binary):
        print(f"error: no such binary: {args.binary}", file=sys.stderr)
        return 1
    flags = ["--rounds", str(args.rounds), "--seed", str(args.seed), *args.extra_flag]
    if args.churn:
        # Churn + deadline + stale buffer together exercise the elastic tail of
        # the checkpoint format (membership trace, departed-state FIFO, buffered
        # late uploads); the deadline must be tight enough to actually produce
        # stragglers or the stale path is vacuous.
        flags += ["--churn", "0.25", "--deadline", "0.5", "--stale-alpha", "0.5"]

    workdir = tempfile.mkdtemp(prefix="fedkemf_crash_recovery_")
    try:
        reference_telemetry = os.path.join(workdir, "reference.jsonl")
        code = run(args.binary, flags, reference_telemetry, checkpoint=None)
        if code != 0:
            print(f"error: reference run exited {code}", file=sys.stderr)
            return 1
        reference = evaluated_accuracies(reference_telemetry)
        if not reference:
            print("error: reference run produced no evaluated rounds", file=sys.stderr)
            return 1
        print(f"reference: {len(reference)} evaluated rounds over {args.rounds} rounds")

        failures = 0
        for phase in args.phases:
            if not verify_phase(args.binary, flags, phase, args.crash_round,
                                reference, workdir, args.max_restarts):
                failures += 1
        if failures:
            print(f"FAIL: {failures}/{len(args.phases)} kill phases diverged",
                  file=sys.stderr)
            return 1
        print(f"OK: all {len(args.phases)} kill phases resumed bitwise-identically")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
