// chaos_proxy: a deterministic fault-injecting TCP/Unix proxy for the frame
// protocol.
//
// Sits between fed_client processes and a fed_server, parses the 12-byte
// frame headers so faults land on whole-frame boundaries, and injects a
// seeded mix of the failures a real network serves up:
//
//   reset       both legs of the connection are torn down mid-stream
//   corrupt     one payload byte is flipped (CRC catches it downstream; with
//               --fix-crc the CRC is recomputed so only frame auth can)
//   duplicate   the frame is forwarded twice (idempotency probe)
//   reorder     the frame is held and swapped with the next one
//   delay       the frame is forwarded after a latency spike
//   dribble     the frame is forwarded a few bytes at a time (slow-loris)
//   partition   one global window during which every frame is discarded
//
// Every decision is a pure function of (--seed, connection, leg, frame
// index), so a run injects the same faults every time regardless of thread
// timing.  Frames arriving before --grace-seconds are exempt, keeping
// HELLO/ACK registration out of the blast radius (a rejected *first*
// registration is fatal to an elastic worker by design).
//
// On SIGTERM/SIGINT the proxy drains, writes per-class injection counts to
// --stats as JSON (the chaos harness asserts every class fired), and exits 0.
//
//   ./tools/chaos_proxy --listen unix:///tmp/chaos.sock
//       --upstream unix:///tmp/fed.sock --seed 7 --reset-rate 0.02
//       --corrupt-rate 0.05 --duplicate-rate 0.05 --reorder-rate 0.05
//       --delay-rate 0.1 --delay-seconds 0.2 --dribble-rate 0.05
//       --partition-at 10 --partition-for 8 --stats chaos_stats.json

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "utils/cli.hpp"
#include "utils/logging.hpp"

namespace {

using namespace fedkemf;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

double uniform_from(std::uint64_t h, std::uint64_t salt) {
  return static_cast<double>(mix64(h ^ salt) >> 11) * 0x1.0p-53;
}

struct FaultRates {
  double reset = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  double delay_seconds = 0.2;
  double dribble = 0.0;
  bool fix_crc = false;
  std::uint64_t seed = 0;
  double grace_seconds = 0.0;
  double partition_at = -1.0;   ///< seconds since start; < 0 disables
  double partition_for = 0.0;
};

struct Stats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> resets{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> reorders{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> dribbles{0};
  std::atomic<std::uint64_t> partition_drops{0};
};

Stats g_stats;

std::chrono::steady_clock::time_point g_start;

double seconds_since_start() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - g_start).count();
}

/// One proxied connection: the accepted client fd and the upstream fd, shared
/// by the two pump threads.  shutdown() on both unblocks the peer thread.
struct Conn {
  net::Fd client;
  net::Fd upstream;
  std::atomic<bool> dead{false};

  void kill() {
    if (dead.exchange(true)) return;
    if (client.valid()) ::shutdown(client.get(), SHUT_RDWR);
    if (upstream.valid()) ::shutdown(upstream.get(), SHUT_RDWR);
  }
};

/// Forwards `frame` (a complete header+payload span) honoring the dribble
/// decision.  Throws net::IoError on a dead destination.
void forward(int fd, std::span<const std::uint8_t> frame, bool dribble) {
  if (!dribble) {
    net::write_all(fd, frame.data(), frame.size(), net::Deadline::after(30.0));
    return;
  }
  g_stats.dribbles.fetch_add(1, std::memory_order_relaxed);
  const std::size_t chunk = std::max<std::size_t>(1024, frame.size() / 64);
  for (std::size_t off = 0; off < frame.size(); off += chunk) {
    const std::size_t n = std::min(chunk, frame.size() - off);
    net::write_all(fd, frame.data() + off, n, net::Deadline::after(30.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (g_stop.load(std::memory_order_relaxed)) break;
  }
}

/// Pumps one direction of one connection, injecting faults per frame.
/// `leg` is 0 for client->upstream, 1 for upstream->client.
void pump_leg(const std::shared_ptr<Conn>& conn, std::uint64_t conn_id, int leg,
              const FaultRates& rates) {
  const int src = leg == 0 ? conn->client.get() : conn->upstream.get();
  const int dst = leg == 0 ? conn->upstream.get() : conn->client.get();
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> held;  // a reordered frame waiting for its swap
  std::uint64_t frame_index = 0;
  bool raw = false;  // magic mismatch: not our protocol, forward verbatim

  try {
    while (!g_stop.load(std::memory_order_relaxed) && !conn->dead.load()) {
      // Slice complete frames off the front of the buffer.
      while (!raw && buf.size() >= net::kFrameHeaderBytes) {
        const std::uint32_t magic = static_cast<std::uint32_t>(buf[0]) |
                                    (static_cast<std::uint32_t>(buf[1]) << 8) |
                                    (static_cast<std::uint32_t>(buf[2]) << 16) |
                                    (static_cast<std::uint32_t>(buf[3]) << 24);
        if (magic != net::kFrameMagic) {
          raw = true;
          break;
        }
        const std::size_t length = static_cast<std::size_t>(buf[4]) |
                                   (static_cast<std::size_t>(buf[5]) << 8) |
                                   (static_cast<std::size_t>(buf[6]) << 16) |
                                   (static_cast<std::size_t>(buf[7]) << 24);
        const std::size_t total = net::kFrameHeaderBytes + length;
        if (buf.size() < total) break;

        std::vector<std::uint8_t> frame(buf.begin(),
                                        buf.begin() + static_cast<std::ptrdiff_t>(total));
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
        g_stats.frames.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t h =
            mix64(rates.seed ^ mix64(conn_id * 2 + static_cast<std::uint64_t>(leg)) ^
                  mix64(0x9e3779b97f4a7c15ull + frame_index));
        ++frame_index;

        const double now = seconds_since_start();
        const bool graced = now < rates.grace_seconds;
        if (!graced && rates.partition_at >= 0.0 && now >= rates.partition_at &&
            now < rates.partition_at + rates.partition_for) {
          // Partitioned: the frame silently vanishes (both directions do
          // this, so the window looks like a dead network to both sides).
          g_stats.partition_drops.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!graced && uniform_from(h, 0x8E5E7ull) < rates.reset) {
          g_stats.resets.fetch_add(1, std::memory_order_relaxed);
          conn->kill();
          return;
        }
        if (!graced && uniform_from(h, 0xDE1Aull) < rates.delay) {
          g_stats.delays.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(rates.delay_seconds));
        }
        if (!graced && length > 0 && uniform_from(h, 0xC0B7ull) < rates.corrupt) {
          g_stats.corruptions.fetch_add(1, std::memory_order_relaxed);
          frame[net::kFrameHeaderBytes + mix64(h ^ 0xF11Bull) % length] ^= 0x40;
          if (rates.fix_crc) {
            // Recompute the CRC over the tampered payload: the checksum now
            // passes and only keyed frame auth can reject the frame.
            const std::uint32_t crc = core::crc32(std::span<const std::uint8_t>(
                frame.data() + net::kFrameHeaderBytes, length));
            frame[8] = static_cast<std::uint8_t>(crc & 0xFF);
            frame[9] = static_cast<std::uint8_t>((crc >> 8) & 0xFF);
            frame[10] = static_cast<std::uint8_t>((crc >> 16) & 0xFF);
            frame[11] = static_cast<std::uint8_t>((crc >> 24) & 0xFF);
          }
        }
        const bool dribble = !graced && uniform_from(h, 0xD81Bull) < rates.dribble;
        if (!graced && held.empty() && uniform_from(h, 0x8E08Dull) < rates.reorder) {
          g_stats.reorders.fetch_add(1, std::memory_order_relaxed);
          held = std::move(frame);
          continue;  // swapped with whatever frame comes next
        }
        forward(dst, frame, dribble);
        if (!graced && uniform_from(h, 0xD0B1ull) < rates.duplicate) {
          g_stats.duplicates.fetch_add(1, std::memory_order_relaxed);
          forward(dst, frame, false);
        }
        if (!held.empty()) {
          forward(dst, held, false);
          held.clear();
        }
      }
      if (raw && !buf.empty()) {
        net::write_all(dst, buf.data(), buf.size(), net::Deadline::after(30.0));
        buf.clear();
      }

      struct pollfd pfd {};
      pfd.fd = src;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 250);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (rc == 0) continue;
      std::uint8_t chunk[64 * 1024];
      const ssize_t n = ::recv(src, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        buf.insert(buf.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) break;  // orderly EOF
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    if (!held.empty() && !conn->dead.load()) forward(dst, held, false);
  } catch (const net::IoError&) {
    // Destination died mid-forward; tear the whole connection down below.
  }
  conn->kill();
}

void write_stats(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    utils::log_warn("chaos") << "cannot write stats to '" << path << "'";
    return;
  }
  out << "{\n"
      << "  \"connections\": " << g_stats.connections.load() << ",\n"
      << "  \"frames\": " << g_stats.frames.load() << ",\n"
      << "  \"injected\": {\n"
      << "    \"resets\": " << g_stats.resets.load() << ",\n"
      << "    \"corruptions\": " << g_stats.corruptions.load() << ",\n"
      << "    \"duplicates\": " << g_stats.duplicates.load() << ",\n"
      << "    \"reorders\": " << g_stats.reorders.load() << ",\n"
      << "    \"delays\": " << g_stats.delays.load() << ",\n"
      << "    \"dribbles\": " << g_stats.dribbles.load() << ",\n"
      << "    \"partition_drops\": " << g_stats.partition_drops.load() << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_uri = "unix:///tmp/chaos.sock";
  std::string upstream_uri = "unix:///tmp/fedkemf.sock";
  std::string stats_path;
  FaultRates rates;

  utils::Cli cli("chaos_proxy", "deterministic fault-injecting frame proxy");
  cli.flag("listen", &listen_uri, "endpoint clients connect to");
  cli.flag("upstream", &upstream_uri, "the real server endpoint");
  cli.flag("seed", &rates.seed, "fault-decision seed (same seed => same faults)");
  cli.flag("reset-rate", &rates.reset, "per-frame connection-reset probability");
  cli.flag("corrupt-rate", &rates.corrupt, "per-frame payload-byte-flip probability");
  cli.flag("fix-crc", &rates.fix_crc,
           "recompute the CRC after corrupting (only frame auth catches it)");
  cli.flag("duplicate-rate", &rates.duplicate, "per-frame duplication probability");
  cli.flag("reorder-rate", &rates.reorder, "per-frame swap-with-next probability");
  cli.flag("delay-rate", &rates.delay, "per-frame latency-spike probability");
  cli.flag("delay-seconds", &rates.delay_seconds, "seconds each latency spike lasts");
  cli.flag("dribble-rate", &rates.dribble, "per-frame slow-loris forwarding probability");
  cli.flag("grace-seconds", &rates.grace_seconds,
           "inject nothing during the first N seconds (protects registration)");
  cli.flag("partition-at", &rates.partition_at,
           "seconds after start when the global partition opens (<0 disables)");
  cli.flag("partition-for", &rates.partition_for, "partition window length in seconds");
  cli.flag("stats", &stats_path, "write injection counts here as JSON on exit");
  cli.parse(argc, argv);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  const net::Endpoint listen_ep = net::Endpoint::parse(listen_uri);
  const net::Endpoint upstream_ep = net::Endpoint::parse(upstream_uri);
  net::Fd listener;
  try {
    listener = net::listen_endpoint(listen_ep);
  } catch (const net::IoError& e) {
    std::fprintf(stderr, "chaos_proxy: %s\n", e.what());
    return 1;
  }
  g_start = std::chrono::steady_clock::now();
  utils::log_info("chaos") << "proxying " << listen_ep.to_string() << " -> "
                           << upstream_ep.to_string() << " seed=" << rates.seed;

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = listener.get();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 250);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int accepted = ::accept(listener.get(), nullptr, nullptr);
    if (accepted < 0) continue;

    auto conn = std::make_shared<Conn>();
    conn->client.reset(accepted);
    try {
      conn->upstream = net::connect_endpoint(upstream_ep, net::Deadline::after(10.0));
    } catch (const net::IoError& e) {
      utils::log_warn("chaos") << "upstream connect failed: " << e.what();
      continue;  // dropping `conn` closes the accepted fd
    }
    net::set_nodelay(conn->client.get());
    net::set_nodelay(conn->upstream.get());
    g_stats.connections.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t conn_id = next_conn_id++;
    conns.push_back(conn);
    threads.emplace_back([conn, conn_id, &rates] { pump_leg(conn, conn_id, 0, rates); });
    threads.emplace_back([conn, conn_id, &rates] { pump_leg(conn, conn_id, 1, rates); });
  }

  // Flush the stats the moment the accept loop exits: a pump leg wedged in a
  // long injected delay (or a peer that never closes) can stall the joins
  // below, and the harness must still find the counts on SIGTERM.  Counters
  // are atomics, so this snapshot is safe while legs still run; the
  // post-join rewrite below replaces it with the final totals.
  for (const auto& conn : conns) conn->kill();
  write_stats(stats_path);
  for (auto& t : threads) t.join();
  write_stats(stats_path);
  return 0;
}
