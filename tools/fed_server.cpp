// Federation server: the aggregation side of a real multi-process run.
//
//   mirror    lockstep replication of the full run_federated loop; every
//             algorithm works and a fault-free run matches the in-process
//             simulator bit-for-bit (accuracy and per-round metered bytes).
//   elastic   server-authoritative rounds over whatever clients are
//             connected; disconnects map onto churn, late uploads onto the
//             staleness buffer.  fedavg / fedprox / fednova only.
//   reference in-process run with no sockets — the parity baseline
//             tools/run_federation.py diffs a distributed run against.
//
//   ./tools/fed_server --mode mirror --endpoint unix:///tmp/fed.sock
//       --expect-clients 2 --clients 8 --rounds 3 --results server.json

#include <cstdio>
#include <exception>
#include <string>

#include "fed_common.hpp"
#include "fl/runner.hpp"
#include "utils/table.hpp"

int main(int argc, char** argv) {
  using namespace fedkemf;

  tools::SpecFlags flags;
  std::string mode = "mirror";
  std::string endpoint = "unix:///tmp/fedkemf.sock";
  std::size_t expect_clients = 0;
  std::size_t min_clients = 1;
  double hello_wait = 60.0;
  double join_wait = 60.0;
  double upload_timeout = 30.0;
  double await_timeout = 600.0;
  double heartbeat_interval = 2.0;
  double liveness_timeout = 20.0;
  std::string auth_key;
  double fault_drop = 0.0;
  double fault_corrupt = 0.0;
  double fault_delay = 0.0;
  double fault_delay_seconds = 0.05;
  std::size_t fault_seed = 0;
  std::size_t max_connections = 0;
  std::size_t max_inflight_uploads = 0;
  std::size_t max_pending_upload_bytes = 0;
  double busy_retry_after = 2.0;
  std::size_t memory_budget_mb = 0;
  std::size_t max_fusion_members = 0;
  std::string spill_dir;
  std::string wal_dir;
  std::size_t checkpoint_every = 1;
  std::size_t checkpoint_retain = 3;
  double churn_leave = 0.0;
  double churn_rejoin = 0.0;
  std::size_t departed_retention = 4;
  std::size_t population_scale = 1;
  std::string results;
  bool quiet = false;

  utils::Cli cli("fed_server", "federation server (mirror | elastic | reference)");
  tools::register_spec_flags(cli, flags);
  cli.flag("mode", &mode,
           "mirror | elastic | reference (in-process baseline) | overload "
           "(in-process churn + resource-limit soak)");
  cli.flag("endpoint", &endpoint, "tcp://host:port or unix:///path");
  cli.flag("expect-clients", &expect_clients,
           "mirror: remote replicas to wait for before round 0");
  cli.flag("min-clients", &min_clients, "elastic: connected clients needed per round");
  cli.flag("hello-wait", &hello_wait, "mirror: seconds to wait for the replicas");
  cli.flag("join-wait", &join_wait, "elastic: seconds to wait for min-clients");
  cli.flag("upload-timeout", &upload_timeout, "elastic: per-upload deadline seconds");
  cli.flag("await-timeout", &await_timeout, "mirror: per-await deadline seconds");
  cli.flag("heartbeat-interval", &heartbeat_interval,
           "elastic: PING registered clients this often (seconds)");
  cli.flag("liveness-timeout", &liveness_timeout,
           "elastic: evict a connection silent for this many seconds");
  cli.flag("auth-key", &auth_key,
           "shared secret for SipHash frame authentication (clients must match)");
  cli.flag("fault-drop", &fault_drop,
           "elastic: deterministic per-attempt transfer drop rate [0,1]");
  cli.flag("fault-corrupt", &fault_corrupt,
           "elastic: deterministic per-attempt payload corruption rate [0,1]");
  cli.flag("fault-delay", &fault_delay,
           "elastic: deterministic per-attempt delay-injection rate [0,1]");
  cli.flag("fault-delay-seconds", &fault_delay_seconds,
           "elastic: seconds each injected delay sleeps");
  cli.flag("fault-seed", &fault_seed, "elastic: fault-injection stream seed");
  cli.flag("max-connections", &max_connections,
           "elastic: BUSY new HELLOs past this many sockets (0 = unlimited)");
  cli.flag("max-inflight-uploads", &max_inflight_uploads,
           "elastic: shed oldest parked uploads past this count (0 = unlimited)");
  cli.flag("max-pending-upload-bytes", &max_pending_upload_bytes,
           "elastic: shed oldest parked uploads past this many bytes (0 = unlimited)");
  cli.flag("busy-retry-after", &busy_retry_after,
           "elastic: retry-after hint (seconds) carried by BUSY frames");
  cli.flag("memory-budget-mb", &memory_budget_mb,
           "elastic: aggregation memory budget in MiB (0 = unlimited)");
  cli.flag("max-fusion-members", &max_fusion_members,
           "elastic: cap fusion cohort, shed stale members first (0 = unlimited)");
  cli.flag("spill-dir", &spill_dir,
           "elastic/overload: spill departed-client state to this directory");
  cli.flag("wal-dir", &wal_dir,
           "elastic: write-ahead log + checkpoints here; restart with the same "
           "directory to crash-resume the run (empty = volatile)");
  cli.flag("checkpoint-every", &checkpoint_every,
           "elastic: rounds between full server checkpoints (needs --wal-dir)");
  cli.flag("checkpoint-retain", &checkpoint_retain,
           "elastic: newest checkpoints kept on disk");
  cli.flag("churn-leave", &churn_leave, "overload: per-round departure probability");
  cli.flag("churn-rejoin", &churn_rejoin, "overload: per-round re-enrollment probability");
  cli.flag("departed-retention", &departed_retention,
           "overload: departed clients whose state is retained before eviction");
  cli.flag("population-scale", &population_scale,
           "overload: registered-population multiplier (phantom clients)");
  cli.flag("results", &results, "write the run summary JSON here");
  cli.flag("quiet", &quiet, "suppress the history table");
  cli.parse(argc, argv);

  fl::install_shutdown_handler();
  const net::FedSpec spec = tools::to_spec(flags);

  fl::RunResult result;
  try {
    if (mode == "reference") {
      result = net::run_in_process(spec);
    } else if (mode == "overload") {
      net::OverloadSimOptions extra;
      extra.resources.memory_budget_bytes = memory_budget_mb << 20;
      extra.resources.max_fusion_members = max_fusion_members;
      extra.resources.spill_dir = spill_dir;
      extra.leave_prob = churn_leave;
      extra.rejoin_prob = churn_rejoin;
      extra.departed_state_retention = departed_retention;
      extra.population_scale = population_scale;
      result = net::run_overload_in_process(spec, extra);
    } else if (mode == "mirror") {
      net::MirrorServerOptions options;
      options.endpoint = net::Endpoint::parse(endpoint);
      options.expect_clients = expect_clients;
      options.hello_wait_seconds = hello_wait;
      options.await_timeout_seconds = await_timeout;
      options.auth_key = auth_key;
      result = net::run_mirror_server(spec, options);
    } else if (mode == "elastic") {
      net::ElasticServerOptions options;
      options.endpoint = net::Endpoint::parse(endpoint);
      options.min_clients = min_clients;
      options.join_wait_seconds = join_wait;
      options.upload_timeout_seconds = upload_timeout;
      options.heartbeat_interval_seconds = heartbeat_interval;
      options.liveness_timeout_seconds = liveness_timeout;
      options.auth_key = auth_key;
      options.fault.drop_rate = fault_drop;
      options.fault.corrupt_rate = fault_corrupt;
      options.fault.delay_rate = fault_delay;
      options.fault.delay_seconds = fault_delay_seconds;
      options.fault.seed = fault_seed;
      options.resources.max_connections = max_connections;
      options.resources.max_inflight_uploads = max_inflight_uploads;
      options.resources.max_pending_upload_bytes = max_pending_upload_bytes;
      options.resources.busy_retry_after_seconds = busy_retry_after;
      if (memory_budget_mb > 0 || max_fusion_members > 0 || !spill_dir.empty()) {
        fl::ResourceLimits aggregation;
        aggregation.memory_budget_bytes = memory_budget_mb << 20;
        aggregation.max_fusion_members = max_fusion_members;
        aggregation.spill_dir = spill_dir;
        options.aggregation = aggregation;
      }
      options.durability.wal_dir = wal_dir;
      options.durability.checkpoint_every = checkpoint_every;
      options.durability.checkpoint_retain = checkpoint_retain;
      result = net::run_elastic_server(spec, options);
    } else {
      std::fprintf(stderr, "fed_server: unknown --mode '%s'\n", mode.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fed_server: %s\n", e.what());
    return 1;
  }

  if (!quiet) {
    std::printf("%s\n", fl::history_table(result).to_markdown().c_str());
  }
  std::printf("mode=%s algorithm=%s rounds=%zu final_accuracy=%.17g total_bytes=%zu%s\n",
              mode.c_str(), result.algorithm.c_str(), result.rounds_completed,
              result.final_accuracy, result.total_bytes,
              result.interrupted ? " (interrupted)" : "");
  if (!results.empty()) {
    try {
      net::write_result_json(results, mode, result);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fed_server: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
