#!/usr/bin/env python3
"""Launch a multi-process federation (fed_server + N fed_client) and check it.

Default: a mirror run over a Unix-domain socket with one replica per client,
diffed bit-for-bit against the in-process reference (--check-parity).

    tools/run_federation.py --clients 8
    tools/run_federation.py --clients 4 --algorithm fedkemf --rounds 2
    tools/run_federation.py --mode elastic --clients 4 --scenario kill-restart
    tools/run_federation.py --mode elastic --clients 4 --scenario sigterm
    tools/run_federation.py --mode elastic --clients 4 --scenario chaos
    tools/run_federation.py --mode elastic --clients 4 --scenario overload
    tools/run_federation.py --mode elastic --clients 4 --scenario server-crash

The chaos scenario is the soak test for the hardened protocol: it first runs
a clean same-seed elastic federation, then reruns it with every client
routed through tools/chaos_proxy (resets, corruption, duplication, reorder,
latency spikes, slow-loris dribble, and one network partition longer than
the liveness timeout), and asserts the chaotic run completes every round
with accuracy within --chaos-accuracy-band of the clean run while every
injected fault class shows up as a nonzero recovery counter in the server's
net_counters telemetry and the proxy's injection stats.

The overload scenario is the soak test for graceful degradation under
resource pressure: a clean elastic run, then the same seed with resource
limits engaged (an admission cap that BUSYs an over-quota probe client, a
fusion-member cap that degrades every round, a memory budget), then an
in-process fedkemf churn run with a spill directory.  It asserts every leg
completes all rounds, the constrained run's accuracy stays within
--overload-accuracy-band of the clean run, and the shed / degraded / spill
counters are all nonzero.

The server-crash scenario is the soak test for the durable server: a clean
same-seed elastic run, then the same federation with --wal-dir enabled while
the *server* is SIGKILLed and restarted at three distinct phases — right
after the first client registers, right after an upload is journaled, and
right after a checkpoint plus a post-checkpoint upload.  The kill points are
found by parsing the write-ahead log the server is appending, so each kill
is guaranteed to land mid-recovery-relevant state.  It asserts the resumed
run completes every round with accuracy within --crash-accuracy-band of the
clean run and that the final server process actually exercised recovery
(nonzero wal_replayed / recovered_uploads / total_reconnects).

Exit code 0 iff every launched process exited cleanly and the requested
checks passed.
"""

import argparse
import json
import os
import signal
import struct
import subprocess
import sys
import tempfile
import time

# Federation flags forwarded verbatim to every process (server and clients
# must agree bit-for-bit: HELLO carries a digest of these).
SPEC_FLAGS = (
    "algorithm clients rounds train_samples test_samples seed arch width "
    "image_size epochs batch lr sample_ratio eval_every threads"
).split()


def spec_args(args):
    out = []
    for name in SPEC_FLAGS:
        out += ["--" + name.replace("_", "-"), str(getattr(args, name))]
    return out


def wait_all(procs, timeout):
    deadline = time.monotonic() + timeout
    codes = []
    for name, p in procs:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            codes.append((name, p.wait(timeout=remaining)))
        except subprocess.TimeoutExpired:
            p.kill()
            codes.append((name, "timeout"))
    return codes


def report(codes, logs):
    ok = all(code == 0 for _, code in codes)
    for name, code in codes:
        marker = "ok" if code == 0 else f"FAILED ({code})"
        print(f"  {name}: {marker}")
        if code != 0 and name in logs:
            sys.stdout.write(open(logs[name]).read())
    return ok


def load_json(path):
    with open(path) as f:
        return json.load(f)


def check_parity(reference_path, distributed_path):
    ref = load_json(reference_path)
    dist = load_json(distributed_path)
    failures = []
    for key in ("final_accuracy", "best_accuracy", "rounds_completed", "total_bytes"):
        if ref[key] != dist[key]:
            failures.append(f"{key}: reference {ref[key]} != distributed {dist[key]}")
    ref_rounds = [(r["round"], r["accuracy"], r["round_bytes"]) for r in ref["rounds"]]
    dist_rounds = [(r["round"], r["accuracy"], r["round_bytes"]) for r in dist["rounds"]]
    if ref_rounds != dist_rounds:
        failures.append(f"per-round history: reference {ref_rounds} != distributed {dist_rounds}")
    return failures


# The chaos soak's injected fault mix (≈31% of frames combined) and the
# recovery counters each class must light up in the server's telemetry.
CHAOS_PROXY_FLAGS = [
    "--reset-rate", "0.02", "--corrupt-rate", "0.05", "--duplicate-rate", "0.12",
    "--reorder-rate", "0.02", "--delay-rate", "0.05", "--delay-seconds", "0.1",
    "--dribble-rate", "0.05", "--grace-seconds", "2",
    "--partition-at", "3", "--partition-for", "4",
]
CHAOS_INJECTION_CLASSES = [
    "resets", "corruptions", "duplicates", "reorders", "delays", "dribbles",
    "partition_drops",
]
CHAOS_RECOVERY_COUNTERS = [
    "net.server.protocol_errors",    # corruption detected (CRC / frame screen)
    "net.server.duplicate_uploads",  # duplication absorbed idempotently
    "net.server.connections_lost",   # resets / partition tore connections down
    "net.server.rejoins",            # workers re-registered through churn
    "net.server.liveness_evictions", # partition detected via missed heartbeats
    "net.server.pings_sent",         # heartbeats were actually running
]


def run_chaos(args, server_bin, client_bin, proxy_bin):
    """Clean elastic run, then the same seed through chaos_proxy, then assert
    completion, an accuracy band, and nonzero per-fault recovery counters."""
    with tempfile.TemporaryDirectory(prefix="fedkemf_chaos_") as tmp:
        logs = {}

        def launch(procs, name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        def elastic_run(label, client_endpoint, server_endpoint, results_json,
                        client_extra=()):
            procs = []
            launch(procs, f"{label}-server",
                   [server_bin, "--mode", "elastic", "--endpoint", server_endpoint,
                    "--min-clients", str(args.clients), "--quiet",
                    "--upload-timeout", str(args.upload_timeout),
                    "--heartbeat-interval", "0.5", "--liveness-timeout", "3",
                    "--results", results_json] + spec_args(args))
            for i in range(args.clients):
                launch(procs, f"{label}-client{i}",
                       [client_bin, "--mode", "elastic", "--endpoint", client_endpoint,
                        "--id", str(i)] + list(client_extra) + spec_args(args))
            codes = wait_all(procs, args.timeout)
            if not report(codes, logs):
                sys.exit(f"error: a {label} federation process failed")
            return load_json(results_json)

        print(f"chaos soak 1/2: clean same-seed elastic run ({args.algorithm}, "
              f"{args.clients} clients, {args.rounds} rounds)")
        clean = elastic_run("clean", f"unix://{tmp}/clean.sock",
                            f"unix://{tmp}/clean.sock",
                            os.path.join(tmp, "clean.json"))

        upstream = f"unix://{tmp}/up.sock"
        proxied = f"unix://{tmp}/chaos.sock"
        stats_json = os.path.join(tmp, "proxy_stats.json")
        proxy = launch([], "proxy",
                       [proxy_bin, "--listen", proxied, "--upstream", upstream,
                        "--seed", str(args.chaos_seed), "--stats", stats_json]
                       + CHAOS_PROXY_FLAGS)
        print("chaos soak 2/2: rerunning through chaos_proxy (resets, corruption, "
              "duplication, reorder, delay, dribble + one 4s partition)")
        try:
            # The train delay keeps rounds in flight long enough for the
            # partition window to land on live traffic.
            chaotic = elastic_run(
                "chaos", proxied, upstream, os.path.join(tmp, "chaos.json"),
                client_extra=["--connect-timeout", "5", "--server-silence", "3",
                              "--max-reconnects", "40",
                              "--train-delay", str(max(args.train_delay, 0.3))])
        finally:
            if proxy.poll() is None:
                proxy.terminate()
        code = proxy.wait(timeout=30)
        if code != 0:
            sys.stdout.write(open(logs["proxy"]).read())
            sys.exit(f"error: chaos_proxy exited {code}")
        stats = load_json(stats_json)

        failures = []
        if chaotic["rounds_completed"] != args.rounds:
            failures.append(f"chaotic run completed {chaotic['rounds_completed']} "
                            f"of {args.rounds} rounds")
        gap = abs(chaotic["final_accuracy"] - clean["final_accuracy"])
        if gap > args.chaos_accuracy_band:
            failures.append(f"accuracy gap {gap:.4f} exceeds the "
                            f"{args.chaos_accuracy_band} band "
                            f"(clean {clean['final_accuracy']:.4f}, "
                            f"chaotic {chaotic['final_accuracy']:.4f})")
        injected = stats.get("injected", {})
        for fault in CHAOS_INJECTION_CLASSES:
            if injected.get(fault, 0) <= 0:
                failures.append(f"proxy injected no '{fault}' faults "
                                f"(try another --chaos-seed)")
        counters = chaotic.get("net_counters", {})
        for name in CHAOS_RECOVERY_COUNTERS:
            if counters.get(name, 0) <= 0:
                failures.append(f"recovery counter {name} stayed zero")

        print(f"  injected: " + " ".join(
            f"{k}={injected.get(k, 0)}" for k in CHAOS_INJECTION_CLASSES))
        print(f"  recovery: " + " ".join(
            f"{k.split('.')[-1]}={counters.get(k, 0)}"
            for k in CHAOS_RECOVERY_COUNTERS))
        print(f"  accuracy: clean={clean['final_accuracy']:.4f} "
              f"chaotic={chaotic['final_accuracy']:.4f} gap={gap:.4f} "
              f"(band {args.chaos_accuracy_band})")
        if failures:
            for f in failures:
                print("  chaos FAILED:", f)
            sys.exit("error: chaos soak failed")
        print("chaos OK: run completed under ~31% injected faults, accuracy in "
              "band, every fault class recovered and counted")


def run_overload(args, server_bin, client_bin):
    """Clean elastic run, then the same seed under resource limits, then an
    in-process churn+spill soak; assert completion, an accuracy band, and
    nonzero shed / degraded / spill counters."""
    # The federation spec advertises one more client than the server admits:
    # that extra id is the over-quota probe the admission control must BUSY.
    spec = argparse.Namespace(**vars(args))
    spec.clients = args.clients + 1
    with tempfile.TemporaryDirectory(prefix="fedkemf_overload_") as tmp:
        logs = {}

        def launch(procs, name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        def elastic_run(label, results_json, server_extra=(), client_extra=(),
                        probe=False):
            endpoint = f"unix://{tmp}/{label}.sock"
            procs = []
            launch(procs, f"{label}-server",
                   [server_bin, "--mode", "elastic", "--endpoint", endpoint,
                    "--min-clients", str(args.clients), "--quiet",
                    "--upload-timeout", str(args.upload_timeout),
                    "--results", results_json]
                   + list(server_extra) + spec_args(spec))
            for i in range(args.clients):
                launch(procs, f"{label}-client{i}",
                       [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                        "--id", str(i)] + list(client_extra) + spec_args(spec))
            if probe:
                # Let the legitimate cohort claim every admission slot first,
                # then aim the probe at a deliberately full server.  Its small
                # reconnect budget drains on BUSY backoffs and it exits.
                time.sleep(1.2)
                launch(procs, f"{label}-probe",
                       [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                        "--id", str(args.clients), "--max-reconnects", "3",
                        "--connect-timeout", "5"] + spec_args(spec))
            codes = wait_all(procs, args.timeout)
            if probe:
                # The probe normally exhausts its reconnect budget and exits 0
                # while the round is still running; if the federation finishes
                # first the server vanishes mid-backoff and the probe reports
                # the lost connection instead.  Either way the BUSY counter
                # assertion below is what proves admission control fired.
                for i, (name, code) in enumerate(codes):
                    if name == f"{label}-probe" and code == 1:
                        print("  note: probe outlived the run; treating its "
                              "lost-server exit as expected")
                        codes[i] = (name, 0)
            if not report(codes, logs):
                sys.exit(f"error: a {label} federation process failed")
            return load_json(results_json)

        print(f"overload soak 1/3: clean same-seed elastic run ({args.algorithm}, "
              f"{args.clients} clients, {args.rounds} rounds)")
        clean = elastic_run("clean", os.path.join(tmp, "clean.json"))

        fusion_cap = max(2, args.clients - 1)
        print(f"overload soak 2/3: rerunning with resource limits "
              f"(max-connections={args.clients}, fusion cap {fusion_cap}, "
              f"64 MiB budget) plus one over-quota probe client")
        overloaded = elastic_run(
            "overload", os.path.join(tmp, "overload.json"),
            server_extra=["--max-connections", str(args.clients),
                          "--max-inflight-uploads", "64",
                          "--busy-retry-after", "0.3",
                          "--max-fusion-members", str(fusion_cap),
                          "--memory-budget-mb", "64"],
            client_extra=["--train-delay", str(max(args.train_delay, 0.4))],
            probe=True)

        # In-process leg: only the knowledge-distillation algorithms retain
        # per-client state worth spilling, so the spill path is exercised via
        # a fedkemf churn run rather than the elastic fedavg server.
        spill_spec = argparse.Namespace(**vars(args))
        spill_spec.algorithm = "fedkemf"
        spill_spec.clients = 8
        spill_spec.rounds = max(args.rounds, 4)
        spill_json = os.path.join(tmp, "spill.json")
        print(f"overload soak 3/3: in-process fedkemf churn run "
              f"({spill_spec.clients} clients x100 registered, {spill_spec.rounds} "
              f"rounds, departed state spilled to disk)")
        procs = []
        launch(procs, "spill-run",
               [server_bin, "--mode", "overload", "--quiet",
                "--results", spill_json,
                "--churn-leave", "0.3", "--churn-rejoin", "0.35",
                "--departed-retention", "1", "--max-fusion-members", "3",
                "--memory-budget-mb", "64",
                "--spill-dir", os.path.join(tmp, "spill"),
                "--population-scale", "100"] + spec_args(spill_spec))
        if not report(wait_all(procs, args.timeout), logs):
            sys.exit("error: the in-process overload run failed")
        spill = load_json(spill_json)

        failures = []
        if overloaded["rounds_completed"] != args.rounds:
            failures.append(f"constrained run completed "
                            f"{overloaded['rounds_completed']} of "
                            f"{args.rounds} rounds")
        gap = abs(overloaded["final_accuracy"] - clean["final_accuracy"])
        if gap > args.overload_accuracy_band:
            failures.append(f"accuracy gap {gap:.4f} exceeds the "
                            f"{args.overload_accuracy_band} band "
                            f"(clean {clean['final_accuracy']:.4f}, "
                            f"constrained {overloaded['final_accuracy']:.4f})")
        counters = overloaded.get("net_counters", {})
        busy = counters.get("net.server.shed.busy_hellos", 0)
        shed_uploads = counters.get("net.server.shed.uploads", 0)
        if busy + shed_uploads <= 0:
            failures.append("nothing was shed: net.server.shed.busy_hellos and "
                            "net.server.shed.uploads both stayed zero")
        if counters.get("fl.fusion.degraded_rounds", 0) <= 0:
            failures.append("fl.fusion.degraded_rounds stayed zero under the "
                            "fusion-member cap")
        if overloaded.get("total_degraded_rounds", 0) <= 0:
            failures.append("the constrained run recorded no degraded rounds")
        if spill["rounds_completed"] != spill_spec.rounds:
            failures.append(f"spill run completed {spill['rounds_completed']} "
                            f"of {spill_spec.rounds} rounds")
        spill_counters = spill.get("net_counters", {})
        if spill_counters.get("fl.spill.stored", 0) <= 0:
            failures.append("fl.spill.stored stayed zero: departed-client "
                            "state never reached the spill directory")
        if spill.get("peak_rss_bytes", 0) <= 0:
            failures.append("peak_rss_bytes missing from the spill-run summary")

        print(f"  shed: busy_hellos={busy} uploads={shed_uploads}")
        print(f"  degraded: rounds="
              f"{counters.get('fl.fusion.degraded_rounds', 0)} "
              f"members={counters.get('fl.fusion.shed_members', 0)}")
        print(f"  spill: stored={spill_counters.get('fl.spill.stored', 0)} "
              f"loaded={spill_counters.get('fl.spill.loaded', 0)} "
              f"peak_rss_mb={spill.get('peak_rss_bytes', 0) / 1048576.0:.1f}")
        print(f"  accuracy: clean={clean['final_accuracy']:.4f} "
              f"constrained={overloaded['final_accuracy']:.4f} gap={gap:.4f} "
              f"(band {args.overload_accuracy_band})")
        if failures:
            for f in failures:
                print("  overload FAILED:", f)
            sys.exit("error: overload soak failed")
        print("overload OK: every leg completed, accuracy in band, admission "
              "control / fusion cap / spill all engaged and counted")


# WAL record framing (src/net/wal.hpp): [magic u32][crc32 u32][length u32]
# [payload], little-endian, payload byte 0 is the record type.  The crash
# scenario parses the log the server is writing to aim each SIGKILL at a
# phase that forces the restarted server down a distinct recovery path.
WAL_MAGIC = 0xFEDAF11E
WAL_ROUND_START = 1
WAL_UPLOAD_CLAIMED = 2
WAL_STALE_APPLIED = 3
WAL_MEMBERSHIP = 4
WAL_CHECKPOINT_MARK = 5
# Either consumption record carries a full upload payload the recovery path
# must re-park (or remember) after a kill.
WAL_CONSUMED = (WAL_UPLOAD_CLAIMED, WAL_STALE_APPLIED)


def wal_record_types(path):
    """Types of the whole records currently in the WAL, in append order."""
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError:
        return []
    types, off = [], 0
    while off + 12 <= len(blob):
        magic, _crc, length = struct.unpack_from("<III", blob, off)
        if magic != WAL_MAGIC or length < 1 or off + 12 + length > len(blob):
            break  # torn tail — same stop rule as the server's scan
        types.append(blob[off + 12])
        off += 12 + length
    return types


# (phase name, predicate over the record types appended SINCE the last kill,
# what the kill forces the next recovery to prove).
CRASH_PHASES = [
    ("first-join", lambda t: WAL_MEMBERSHIP in t,
     "membership replay from an empty checkpoint horizon"),
    ("mid-upload", lambda t: any(r in WAL_CONSUMED for r in t),
     "a consumed upload whose fusion was lost must be re-parked"),
    ("post-checkpoint", lambda t: WAL_CHECKPOINT_MARK in t
     and any(r in WAL_CONSUMED
             for r in t[len(t) - 1 - t[::-1].index(WAL_CHECKPOINT_MARK):]),
     "checkpoint load plus WAL-suffix replay of a newer upload"),
]


def run_server_crash(args, server_bin, client_bin):
    """Clean elastic run, then the same seed with a WAL while the server is
    SIGKILLed + restarted at three phases; assert the resumed run completes,
    stays in the accuracy band, and the recovery counters are nonzero."""
    spec = argparse.Namespace(**vars(args))
    spec.rounds = max(args.rounds, 4)  # room for kills in three distinct rounds
    with tempfile.TemporaryDirectory(prefix="fedkemf_crash_") as tmp:
        logs = {}

        def launch(procs, name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        print(f"server-crash soak 1/2: clean same-seed elastic run "
              f"({args.algorithm}, {args.clients} clients, {spec.rounds} rounds)")
        clean_json = os.path.join(tmp, "clean.json")
        procs = []
        launch(procs, "clean-server",
               [server_bin, "--mode", "elastic",
                "--endpoint", f"unix://{tmp}/clean.sock",
                "--min-clients", str(args.clients), "--quiet",
                "--upload-timeout", str(args.upload_timeout),
                "--results", clean_json] + spec_args(spec))
        for i in range(args.clients):
            launch(procs, f"clean-client{i}",
                   [client_bin, "--mode", "elastic",
                    "--endpoint", f"unix://{tmp}/clean.sock",
                    "--id", str(i)] + spec_args(spec))
        if not report(wait_all(procs, args.timeout), logs):
            sys.exit("error: a clean federation process failed")
        clean = load_json(clean_json)

        endpoint = f"unix://{tmp}/crash.sock"
        wal_dir = os.path.join(tmp, "wal")
        wal_log = os.path.join(wal_dir, "wal.log")
        crash_json = os.path.join(tmp, "crash.json")
        server_argv = [server_bin, "--mode", "elastic", "--endpoint", endpoint,
                       "--min-clients", str(args.clients), "--quiet",
                       "--upload-timeout", str(args.upload_timeout),
                       "--wal-dir", wal_dir, "--checkpoint-every", "1",
                       "--results", crash_json] + spec_args(spec)
        print(f"server-crash soak 2/2: durable run, SIGKILLing the server at "
              f"{len(CRASH_PHASES)} WAL-detected phases")
        procs = []
        server = launch(procs, "crash-server-leg0", server_argv)
        for i in range(args.clients):
            # Generous reconnect budget: every server kill costs each worker
            # one (or more) reconnect attempts.
            extra = ["--results", os.path.join(tmp, "client0.json")] if i == 0 else []
            launch(procs, f"crash-client{i}",
                   [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                    "--id", str(i), "--connect-timeout", "10",
                    "--server-silence", "3", "--max-reconnects", "60",
                    "--train-delay", str(max(args.train_delay, 0.3))]
                   + extra + spec_args(spec))

        killed = []
        baseline = 0  # records already in the WAL at the last restart
        for leg, (phase, reached, proves) in enumerate(CRASH_PHASES):
            deadline = time.monotonic() + args.timeout / (len(CRASH_PHASES) + 1)
            while time.monotonic() < deadline:
                if server.poll() is not None:
                    # Satellite of the kill-restart rule: a scenario whose
                    # kill never landed proved nothing and must not pass.
                    sys.exit(f"error: durable run finished before the "
                             f"'{phase}' kill landed; raise --train-delay or "
                             f"--rounds so every phase stays reachable")
                types = wal_record_types(wal_log)
                if reached(types[baseline:]):
                    break
                time.sleep(0.02)
            else:
                sys.exit(f"error: phase '{phase}' never appeared in the WAL "
                         f"(see {logs[f'crash-server-leg{leg}']})")
            server.kill()
            server.wait()
            killed.append(f"crash-server-leg{leg}")
            print(f"  kill {leg + 1}/{len(CRASH_PHASES)} at phase '{phase}' "
                  f"({len(types)} WAL records): next recovery must prove {proves}")
            baseline = len(types)
            time.sleep(0.3)
            server = launch(procs, f"crash-server-leg{leg + 1}", server_argv)

        codes = wait_all(procs, args.timeout)
        codes = [(n, 0 if (n in killed and c == -9) else c) for n, c in codes]
        if not report(codes, logs):
            sys.exit("error: a server-crash federation process failed")
        result = load_json(crash_json)
        worker = load_json(os.path.join(tmp, "client0.json"))

        failures = []
        if result["rounds_completed"] != spec.rounds:
            failures.append(f"resumed run completed {result['rounds_completed']} "
                            f"of {spec.rounds} rounds")
        if result["interrupted"]:
            failures.append("the final server leg still reports interrupted=true")
        gap = abs(result["final_accuracy"] - clean["final_accuracy"])
        if gap > args.crash_accuracy_band:
            failures.append(f"accuracy gap {gap:.4f} exceeds the "
                            f"{args.crash_accuracy_band} band "
                            f"(clean {clean['final_accuracy']:.4f}, "
                            f"resumed {result['final_accuracy']:.4f})")
        for counter in ("wal_replayed", "recovered_uploads", "total_reconnects"):
            if result.get(counter, 0) <= 0:
                failures.append(f"{counter} stayed zero in the final server leg")
        if worker.get("interrupted", True):
            failures.append("client0 reports interrupted=true after the run")
        if worker.get("reconnects", 0) <= 0:
            failures.append("client0 never reconnected despite the server kills")

        print(f"  recovery: wal_replayed={result.get('wal_replayed', 0)} "
              f"recovered_uploads={result.get('recovered_uploads', 0)} "
              f"total_reconnects={result.get('total_reconnects', 0)} "
              f"client0_reconnects={worker.get('reconnects', 0)}")
        print(f"  accuracy: clean={clean['final_accuracy']:.4f} "
              f"resumed={result['final_accuracy']:.4f} gap={gap:.4f} "
              f"(band {args.crash_accuracy_band})")
        if failures:
            for f in failures:
                print("  server-crash FAILED:", f)
            sys.exit("error: server-crash soak failed")
        print("server-crash OK: the run survived three server SIGKILLs, resumed "
              "from the WAL + checkpoints, accuracy in band, recovery counted")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build", help="CMake build directory")
    ap.add_argument("--mode", default="mirror", choices=["mirror", "elastic"])
    ap.add_argument("--endpoint", default="", help="tcp://host:port or unix:///path "
                    "(default: a fresh unix socket in a temp dir)")
    ap.add_argument("--scenario", default="plain",
                    choices=["plain", "kill-restart", "sigterm", "chaos", "overload",
                             "server-crash"],
                    help="elastic fault scenarios")
    ap.add_argument("--chaos-seed", type=int, default=7,
                    help="chaos: fault-decision seed handed to chaos_proxy")
    ap.add_argument("--chaos-accuracy-band", type=float, default=0.02,
                    help="chaos: allowed |chaotic - clean| final-accuracy gap")
    ap.add_argument("--overload-accuracy-band", type=float, default=0.02,
                    help="overload: allowed |constrained - clean| final-accuracy gap")
    ap.add_argument("--crash-accuracy-band", type=float, default=0.02,
                    help="server-crash: allowed |resumed - clean| final-accuracy gap")
    ap.add_argument("--check-parity", action=argparse.BooleanOptionalAction, default=None,
                    help="diff against the in-process reference (default: on for mirror)")
    ap.add_argument("--timeout", type=float, default=600.0, help="whole-run timeout seconds")
    ap.add_argument("--train-delay", type=float, default=0.0,
                    help="elastic: artificial per-round client delay")
    ap.add_argument("--upload-timeout", type=float, default=30.0)
    # Forwarded federation spec.
    ap.add_argument("--algorithm", default="fedavg")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--train-samples", type=int, default=512)
    ap.add_argument("--test-samples", type=int, default=256)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--arch", default="cnn2")
    ap.add_argument("--width", type=float, default=0.25)
    ap.add_argument("--image-size", type=int, default=12)
    ap.add_argument("--epochs", type=int, default=1)
    ap.add_argument("--batch", type=int, default=32)
    ap.add_argument("--lr", type=float, default=0.05)
    ap.add_argument("--sample-ratio", type=float, default=1.0)
    ap.add_argument("--eval-every", type=int, default=1)
    ap.add_argument("--threads", type=int, default=0)
    args = ap.parse_args()

    server_bin = os.path.join(args.build_dir, "tools", "fed_server")
    client_bin = os.path.join(args.build_dir, "tools", "fed_client")
    for binary in (server_bin, client_bin):
        if not os.path.exists(binary):
            sys.exit(f"error: {binary} not found (build the 'fed_server'/'fed_client' targets)")
    if args.check_parity is None:
        args.check_parity = args.mode == "mirror" and args.scenario == "plain"

    if args.scenario == "chaos":
        if args.mode != "elastic":
            sys.exit("error: --scenario chaos requires --mode elastic")
        proxy_bin = os.path.join(args.build_dir, "tools", "chaos_proxy")
        if not os.path.exists(proxy_bin):
            sys.exit(f"error: {proxy_bin} not found (build the 'chaos_proxy' target)")
        run_chaos(args, server_bin, client_bin, proxy_bin)
        print("run_federation: all checks passed")
        return

    if args.scenario == "overload":
        if args.mode != "elastic":
            sys.exit("error: --scenario overload requires --mode elastic")
        run_overload(args, server_bin, client_bin)
        print("run_federation: all checks passed")
        return

    if args.scenario == "server-crash":
        if args.mode != "elastic":
            sys.exit("error: --scenario server-crash requires --mode elastic")
        run_server_crash(args, server_bin, client_bin)
        print("run_federation: all checks passed")
        return

    with tempfile.TemporaryDirectory(prefix="fedkemf_") as tmp:
        endpoint = args.endpoint or f"unix://{tmp}/fed.sock"
        logs, procs = {}, []

        def launch(name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        reference_json = os.path.join(tmp, "reference.json")
        if args.check_parity:
            print(f"running in-process reference ({args.algorithm}, "
                  f"{args.clients} clients, {args.rounds} rounds)...")
            subprocess.run([server_bin, "--mode", "reference", "--quiet",
                            "--results", reference_json] + spec_args(args), check=True)

        server_json = os.path.join(tmp, "server.json")
        if args.mode == "mirror":
            server_argv = [server_bin, "--mode", "mirror", "--endpoint", endpoint,
                           "--expect-clients", str(args.clients), "--quiet",
                           "--results", server_json] + spec_args(args)
            client_argvs = [
                [client_bin, "--mode", "mirror", "--endpoint", endpoint,
                 "--own", str(i)] + spec_args(args)
                for i in range(args.clients)
            ]
        else:
            server_argv = [server_bin, "--mode", "elastic", "--endpoint", endpoint,
                           "--min-clients", str(args.clients), "--quiet",
                           "--upload-timeout", str(args.upload_timeout),
                           "--results", server_json] + spec_args(args)
            client_argvs = [
                [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                 "--id", str(i), "--train-delay", str(args.train_delay)] + spec_args(args)
                for i in range(args.clients)
            ]

        print(f"launching {args.mode} federation: 1 server + {args.clients} clients "
              f"over {endpoint}")
        victim_name = None
        if args.scenario == "kill-restart":
            # A kill-restart whose kill never landed proved nothing: retry
            # with an earlier kill, and fail the scenario outright if even
            # the shortest delay loses the race.
            for attempt, kill_after in enumerate((1.5, 0.5, 0.15)):
                prefix = "" if attempt == 0 else f"retry{attempt}-"
                if attempt:
                    wait_all(procs, args.timeout)  # drain the no-op run
                    procs.clear()
                    print(f"  retrying with an earlier kill ({kill_after}s)")
                server = launch(prefix + "server", server_argv)
                clients = [launch(f"{prefix}client{i}", argv)
                           for i, argv in enumerate(client_argvs)]
                time.sleep(kill_after)
                victim = clients[-1]
                if victim.poll() is None:
                    victim.kill()
                    victim_name = f"{prefix}client{args.clients - 1}"
                    print("  killed client (SIGKILL); restarting with --rejoin in 0.5s")
                    time.sleep(0.5)
                    launch(prefix + "client-rejoin", client_argvs[-1] + ["--rejoin"])
                    break
                print("  run finished before the kill landed")
            else:
                sys.exit("error: the kill-restart kill never landed, even at "
                         "the shortest delay; raise --train-delay or --rounds")
        else:
            server = launch("server", server_argv)
            clients = [launch(f"client{i}", argv) for i, argv in enumerate(client_argvs)]
            if args.scenario == "sigterm":
                time.sleep(1.5)
                if server.poll() is None:
                    print("  sending SIGTERM to the server (graceful shutdown)")
                    server.send_signal(signal.SIGTERM)

        codes = wait_all(procs, args.timeout)
        # An elastic client that was deliberately SIGKILLed reports -9; that is
        # the scenario, not a failure.  Same for workers cut off by a sigterm'd
        # or finished server (they exit 0 via BYE handling).
        if args.scenario == "kill-restart":
            codes = [(n, 0 if (n == victim_name and c == -9) else c)
                     for n, c in codes]
        if not report(codes, logs):
            sys.exit("error: a federation process failed")

        result = load_json(server_json)
        print(f"distributed result: final_accuracy={result['final_accuracy']} "
              f"total_bytes={result['total_bytes']} rounds={result['rounds_completed']}")

        if args.check_parity:
            failures = check_parity(reference_json, server_json)
            if failures:
                for f in failures:
                    print("  parity FAILED:", f)
                sys.exit("error: distributed run diverged from the in-process reference")
            print("parity OK: distributed == in-process reference (accuracy and bytes)")

        if args.scenario == "kill-restart":
            if result["total_left"] < 1:
                sys.exit("error: kill-restart scenario recorded no departure")
            print(f"churn OK: joined={result['total_joined']} left={result['total_left']} "
                  f"stale_applied={result['total_stale_applied']}")
        elif args.scenario == "sigterm":
            if not result["interrupted"] and result["rounds_completed"] == args.rounds:
                print("  note: run finished before the SIGTERM landed")
            else:
                print(f"graceful shutdown OK: interrupted={result['interrupted']} after "
                      f"{result['rounds_completed']} rounds")
    print("run_federation: all checks passed")


if __name__ == "__main__":
    main()
