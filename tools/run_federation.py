#!/usr/bin/env python3
"""Launch a multi-process federation (fed_server + N fed_client) and check it.

Default: a mirror run over a Unix-domain socket with one replica per client,
diffed bit-for-bit against the in-process reference (--check-parity).

    tools/run_federation.py --clients 8
    tools/run_federation.py --clients 4 --algorithm fedkemf --rounds 2
    tools/run_federation.py --mode elastic --clients 4 --scenario kill-restart
    tools/run_federation.py --mode elastic --clients 4 --scenario sigterm
    tools/run_federation.py --mode elastic --clients 4 --scenario chaos
    tools/run_federation.py --mode elastic --clients 4 --scenario overload

The chaos scenario is the soak test for the hardened protocol: it first runs
a clean same-seed elastic federation, then reruns it with every client
routed through tools/chaos_proxy (resets, corruption, duplication, reorder,
latency spikes, slow-loris dribble, and one network partition longer than
the liveness timeout), and asserts the chaotic run completes every round
with accuracy within --chaos-accuracy-band of the clean run while every
injected fault class shows up as a nonzero recovery counter in the server's
net_counters telemetry and the proxy's injection stats.

The overload scenario is the soak test for graceful degradation under
resource pressure: a clean elastic run, then the same seed with resource
limits engaged (an admission cap that BUSYs an over-quota probe client, a
fusion-member cap that degrades every round, a memory budget), then an
in-process fedkemf churn run with a spill directory.  It asserts every leg
completes all rounds, the constrained run's accuracy stays within
--overload-accuracy-band of the clean run, and the shed / degraded / spill
counters are all nonzero.

Exit code 0 iff every launched process exited cleanly and the requested
checks passed.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# Federation flags forwarded verbatim to every process (server and clients
# must agree bit-for-bit: HELLO carries a digest of these).
SPEC_FLAGS = (
    "algorithm clients rounds train_samples test_samples seed arch width "
    "image_size epochs batch lr sample_ratio eval_every threads"
).split()


def spec_args(args):
    out = []
    for name in SPEC_FLAGS:
        out += ["--" + name.replace("_", "-"), str(getattr(args, name))]
    return out


def wait_all(procs, timeout):
    deadline = time.monotonic() + timeout
    codes = []
    for name, p in procs:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            codes.append((name, p.wait(timeout=remaining)))
        except subprocess.TimeoutExpired:
            p.kill()
            codes.append((name, "timeout"))
    return codes


def report(codes, logs):
    ok = all(code == 0 for _, code in codes)
    for name, code in codes:
        marker = "ok" if code == 0 else f"FAILED ({code})"
        print(f"  {name}: {marker}")
        if code != 0 and name in logs:
            sys.stdout.write(open(logs[name]).read())
    return ok


def load_json(path):
    with open(path) as f:
        return json.load(f)


def check_parity(reference_path, distributed_path):
    ref = load_json(reference_path)
    dist = load_json(distributed_path)
    failures = []
    for key in ("final_accuracy", "best_accuracy", "rounds_completed", "total_bytes"):
        if ref[key] != dist[key]:
            failures.append(f"{key}: reference {ref[key]} != distributed {dist[key]}")
    ref_rounds = [(r["round"], r["accuracy"], r["round_bytes"]) for r in ref["rounds"]]
    dist_rounds = [(r["round"], r["accuracy"], r["round_bytes"]) for r in dist["rounds"]]
    if ref_rounds != dist_rounds:
        failures.append(f"per-round history: reference {ref_rounds} != distributed {dist_rounds}")
    return failures


# The chaos soak's injected fault mix (≈31% of frames combined) and the
# recovery counters each class must light up in the server's telemetry.
CHAOS_PROXY_FLAGS = [
    "--reset-rate", "0.02", "--corrupt-rate", "0.05", "--duplicate-rate", "0.12",
    "--reorder-rate", "0.02", "--delay-rate", "0.05", "--delay-seconds", "0.1",
    "--dribble-rate", "0.05", "--grace-seconds", "2",
    "--partition-at", "3", "--partition-for", "4",
]
CHAOS_INJECTION_CLASSES = [
    "resets", "corruptions", "duplicates", "reorders", "delays", "dribbles",
    "partition_drops",
]
CHAOS_RECOVERY_COUNTERS = [
    "net.server.protocol_errors",    # corruption detected (CRC / frame screen)
    "net.server.duplicate_uploads",  # duplication absorbed idempotently
    "net.server.connections_lost",   # resets / partition tore connections down
    "net.server.rejoins",            # workers re-registered through churn
    "net.server.liveness_evictions", # partition detected via missed heartbeats
    "net.server.pings_sent",         # heartbeats were actually running
]


def run_chaos(args, server_bin, client_bin, proxy_bin):
    """Clean elastic run, then the same seed through chaos_proxy, then assert
    completion, an accuracy band, and nonzero per-fault recovery counters."""
    with tempfile.TemporaryDirectory(prefix="fedkemf_chaos_") as tmp:
        logs = {}

        def launch(procs, name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        def elastic_run(label, client_endpoint, server_endpoint, results_json,
                        client_extra=()):
            procs = []
            launch(procs, f"{label}-server",
                   [server_bin, "--mode", "elastic", "--endpoint", server_endpoint,
                    "--min-clients", str(args.clients), "--quiet",
                    "--upload-timeout", str(args.upload_timeout),
                    "--heartbeat-interval", "0.5", "--liveness-timeout", "3",
                    "--results", results_json] + spec_args(args))
            for i in range(args.clients):
                launch(procs, f"{label}-client{i}",
                       [client_bin, "--mode", "elastic", "--endpoint", client_endpoint,
                        "--id", str(i)] + list(client_extra) + spec_args(args))
            codes = wait_all(procs, args.timeout)
            if not report(codes, logs):
                sys.exit(f"error: a {label} federation process failed")
            return load_json(results_json)

        print(f"chaos soak 1/2: clean same-seed elastic run ({args.algorithm}, "
              f"{args.clients} clients, {args.rounds} rounds)")
        clean = elastic_run("clean", f"unix://{tmp}/clean.sock",
                            f"unix://{tmp}/clean.sock",
                            os.path.join(tmp, "clean.json"))

        upstream = f"unix://{tmp}/up.sock"
        proxied = f"unix://{tmp}/chaos.sock"
        stats_json = os.path.join(tmp, "proxy_stats.json")
        proxy = launch([], "proxy",
                       [proxy_bin, "--listen", proxied, "--upstream", upstream,
                        "--seed", str(args.chaos_seed), "--stats", stats_json]
                       + CHAOS_PROXY_FLAGS)
        print("chaos soak 2/2: rerunning through chaos_proxy (resets, corruption, "
              "duplication, reorder, delay, dribble + one 4s partition)")
        try:
            # The train delay keeps rounds in flight long enough for the
            # partition window to land on live traffic.
            chaotic = elastic_run(
                "chaos", proxied, upstream, os.path.join(tmp, "chaos.json"),
                client_extra=["--connect-timeout", "5", "--server-silence", "3",
                              "--max-reconnects", "40",
                              "--train-delay", str(max(args.train_delay, 0.3))])
        finally:
            if proxy.poll() is None:
                proxy.terminate()
        code = proxy.wait(timeout=30)
        if code != 0:
            sys.stdout.write(open(logs["proxy"]).read())
            sys.exit(f"error: chaos_proxy exited {code}")
        stats = load_json(stats_json)

        failures = []
        if chaotic["rounds_completed"] != args.rounds:
            failures.append(f"chaotic run completed {chaotic['rounds_completed']} "
                            f"of {args.rounds} rounds")
        gap = abs(chaotic["final_accuracy"] - clean["final_accuracy"])
        if gap > args.chaos_accuracy_band:
            failures.append(f"accuracy gap {gap:.4f} exceeds the "
                            f"{args.chaos_accuracy_band} band "
                            f"(clean {clean['final_accuracy']:.4f}, "
                            f"chaotic {chaotic['final_accuracy']:.4f})")
        injected = stats.get("injected", {})
        for fault in CHAOS_INJECTION_CLASSES:
            if injected.get(fault, 0) <= 0:
                failures.append(f"proxy injected no '{fault}' faults "
                                f"(try another --chaos-seed)")
        counters = chaotic.get("net_counters", {})
        for name in CHAOS_RECOVERY_COUNTERS:
            if counters.get(name, 0) <= 0:
                failures.append(f"recovery counter {name} stayed zero")

        print(f"  injected: " + " ".join(
            f"{k}={injected.get(k, 0)}" for k in CHAOS_INJECTION_CLASSES))
        print(f"  recovery: " + " ".join(
            f"{k.split('.')[-1]}={counters.get(k, 0)}"
            for k in CHAOS_RECOVERY_COUNTERS))
        print(f"  accuracy: clean={clean['final_accuracy']:.4f} "
              f"chaotic={chaotic['final_accuracy']:.4f} gap={gap:.4f} "
              f"(band {args.chaos_accuracy_band})")
        if failures:
            for f in failures:
                print("  chaos FAILED:", f)
            sys.exit("error: chaos soak failed")
        print("chaos OK: run completed under ~31% injected faults, accuracy in "
              "band, every fault class recovered and counted")


def run_overload(args, server_bin, client_bin):
    """Clean elastic run, then the same seed under resource limits, then an
    in-process churn+spill soak; assert completion, an accuracy band, and
    nonzero shed / degraded / spill counters."""
    # The federation spec advertises one more client than the server admits:
    # that extra id is the over-quota probe the admission control must BUSY.
    spec = argparse.Namespace(**vars(args))
    spec.clients = args.clients + 1
    with tempfile.TemporaryDirectory(prefix="fedkemf_overload_") as tmp:
        logs = {}

        def launch(procs, name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        def elastic_run(label, results_json, server_extra=(), client_extra=(),
                        probe=False):
            endpoint = f"unix://{tmp}/{label}.sock"
            procs = []
            launch(procs, f"{label}-server",
                   [server_bin, "--mode", "elastic", "--endpoint", endpoint,
                    "--min-clients", str(args.clients), "--quiet",
                    "--upload-timeout", str(args.upload_timeout),
                    "--results", results_json]
                   + list(server_extra) + spec_args(spec))
            for i in range(args.clients):
                launch(procs, f"{label}-client{i}",
                       [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                        "--id", str(i)] + list(client_extra) + spec_args(spec))
            if probe:
                # Let the legitimate cohort claim every admission slot first,
                # then aim the probe at a deliberately full server.  Its small
                # reconnect budget drains on BUSY backoffs and it exits.
                time.sleep(1.2)
                launch(procs, f"{label}-probe",
                       [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                        "--id", str(args.clients), "--max-reconnects", "3",
                        "--connect-timeout", "5"] + spec_args(spec))
            codes = wait_all(procs, args.timeout)
            if probe:
                # The probe normally exhausts its reconnect budget and exits 0
                # while the round is still running; if the federation finishes
                # first the server vanishes mid-backoff and the probe reports
                # the lost connection instead.  Either way the BUSY counter
                # assertion below is what proves admission control fired.
                for i, (name, code) in enumerate(codes):
                    if name == f"{label}-probe" and code == 1:
                        print("  note: probe outlived the run; treating its "
                              "lost-server exit as expected")
                        codes[i] = (name, 0)
            if not report(codes, logs):
                sys.exit(f"error: a {label} federation process failed")
            return load_json(results_json)

        print(f"overload soak 1/3: clean same-seed elastic run ({args.algorithm}, "
              f"{args.clients} clients, {args.rounds} rounds)")
        clean = elastic_run("clean", os.path.join(tmp, "clean.json"))

        fusion_cap = max(2, args.clients - 1)
        print(f"overload soak 2/3: rerunning with resource limits "
              f"(max-connections={args.clients}, fusion cap {fusion_cap}, "
              f"64 MiB budget) plus one over-quota probe client")
        overloaded = elastic_run(
            "overload", os.path.join(tmp, "overload.json"),
            server_extra=["--max-connections", str(args.clients),
                          "--max-inflight-uploads", "64",
                          "--busy-retry-after", "0.3",
                          "--max-fusion-members", str(fusion_cap),
                          "--memory-budget-mb", "64"],
            client_extra=["--train-delay", str(max(args.train_delay, 0.4))],
            probe=True)

        # In-process leg: only the knowledge-distillation algorithms retain
        # per-client state worth spilling, so the spill path is exercised via
        # a fedkemf churn run rather than the elastic fedavg server.
        spill_spec = argparse.Namespace(**vars(args))
        spill_spec.algorithm = "fedkemf"
        spill_spec.clients = 8
        spill_spec.rounds = max(args.rounds, 4)
        spill_json = os.path.join(tmp, "spill.json")
        print(f"overload soak 3/3: in-process fedkemf churn run "
              f"({spill_spec.clients} clients x100 registered, {spill_spec.rounds} "
              f"rounds, departed state spilled to disk)")
        procs = []
        launch(procs, "spill-run",
               [server_bin, "--mode", "overload", "--quiet",
                "--results", spill_json,
                "--churn-leave", "0.3", "--churn-rejoin", "0.35",
                "--departed-retention", "1", "--max-fusion-members", "3",
                "--memory-budget-mb", "64",
                "--spill-dir", os.path.join(tmp, "spill"),
                "--population-scale", "100"] + spec_args(spill_spec))
        if not report(wait_all(procs, args.timeout), logs):
            sys.exit("error: the in-process overload run failed")
        spill = load_json(spill_json)

        failures = []
        if overloaded["rounds_completed"] != args.rounds:
            failures.append(f"constrained run completed "
                            f"{overloaded['rounds_completed']} of "
                            f"{args.rounds} rounds")
        gap = abs(overloaded["final_accuracy"] - clean["final_accuracy"])
        if gap > args.overload_accuracy_band:
            failures.append(f"accuracy gap {gap:.4f} exceeds the "
                            f"{args.overload_accuracy_band} band "
                            f"(clean {clean['final_accuracy']:.4f}, "
                            f"constrained {overloaded['final_accuracy']:.4f})")
        counters = overloaded.get("net_counters", {})
        busy = counters.get("net.server.shed.busy_hellos", 0)
        shed_uploads = counters.get("net.server.shed.uploads", 0)
        if busy + shed_uploads <= 0:
            failures.append("nothing was shed: net.server.shed.busy_hellos and "
                            "net.server.shed.uploads both stayed zero")
        if counters.get("fl.fusion.degraded_rounds", 0) <= 0:
            failures.append("fl.fusion.degraded_rounds stayed zero under the "
                            "fusion-member cap")
        if overloaded.get("total_degraded_rounds", 0) <= 0:
            failures.append("the constrained run recorded no degraded rounds")
        if spill["rounds_completed"] != spill_spec.rounds:
            failures.append(f"spill run completed {spill['rounds_completed']} "
                            f"of {spill_spec.rounds} rounds")
        spill_counters = spill.get("net_counters", {})
        if spill_counters.get("fl.spill.stored", 0) <= 0:
            failures.append("fl.spill.stored stayed zero: departed-client "
                            "state never reached the spill directory")
        if spill.get("peak_rss_bytes", 0) <= 0:
            failures.append("peak_rss_bytes missing from the spill-run summary")

        print(f"  shed: busy_hellos={busy} uploads={shed_uploads}")
        print(f"  degraded: rounds="
              f"{counters.get('fl.fusion.degraded_rounds', 0)} "
              f"members={counters.get('fl.fusion.shed_members', 0)}")
        print(f"  spill: stored={spill_counters.get('fl.spill.stored', 0)} "
              f"loaded={spill_counters.get('fl.spill.loaded', 0)} "
              f"peak_rss_mb={spill.get('peak_rss_bytes', 0) / 1048576.0:.1f}")
        print(f"  accuracy: clean={clean['final_accuracy']:.4f} "
              f"constrained={overloaded['final_accuracy']:.4f} gap={gap:.4f} "
              f"(band {args.overload_accuracy_band})")
        if failures:
            for f in failures:
                print("  overload FAILED:", f)
            sys.exit("error: overload soak failed")
        print("overload OK: every leg completed, accuracy in band, admission "
              "control / fusion cap / spill all engaged and counted")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build", help="CMake build directory")
    ap.add_argument("--mode", default="mirror", choices=["mirror", "elastic"])
    ap.add_argument("--endpoint", default="", help="tcp://host:port or unix:///path "
                    "(default: a fresh unix socket in a temp dir)")
    ap.add_argument("--scenario", default="plain",
                    choices=["plain", "kill-restart", "sigterm", "chaos", "overload"],
                    help="elastic fault scenarios")
    ap.add_argument("--chaos-seed", type=int, default=7,
                    help="chaos: fault-decision seed handed to chaos_proxy")
    ap.add_argument("--chaos-accuracy-band", type=float, default=0.02,
                    help="chaos: allowed |chaotic - clean| final-accuracy gap")
    ap.add_argument("--overload-accuracy-band", type=float, default=0.02,
                    help="overload: allowed |constrained - clean| final-accuracy gap")
    ap.add_argument("--check-parity", action=argparse.BooleanOptionalAction, default=None,
                    help="diff against the in-process reference (default: on for mirror)")
    ap.add_argument("--timeout", type=float, default=600.0, help="whole-run timeout seconds")
    ap.add_argument("--train-delay", type=float, default=0.0,
                    help="elastic: artificial per-round client delay")
    ap.add_argument("--upload-timeout", type=float, default=30.0)
    # Forwarded federation spec.
    ap.add_argument("--algorithm", default="fedavg")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--train-samples", type=int, default=512)
    ap.add_argument("--test-samples", type=int, default=256)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--arch", default="cnn2")
    ap.add_argument("--width", type=float, default=0.25)
    ap.add_argument("--image-size", type=int, default=12)
    ap.add_argument("--epochs", type=int, default=1)
    ap.add_argument("--batch", type=int, default=32)
    ap.add_argument("--lr", type=float, default=0.05)
    ap.add_argument("--sample-ratio", type=float, default=1.0)
    ap.add_argument("--eval-every", type=int, default=1)
    ap.add_argument("--threads", type=int, default=0)
    args = ap.parse_args()

    server_bin = os.path.join(args.build_dir, "tools", "fed_server")
    client_bin = os.path.join(args.build_dir, "tools", "fed_client")
    for binary in (server_bin, client_bin):
        if not os.path.exists(binary):
            sys.exit(f"error: {binary} not found (build the 'fed_server'/'fed_client' targets)")
    if args.check_parity is None:
        args.check_parity = args.mode == "mirror" and args.scenario == "plain"

    if args.scenario == "chaos":
        if args.mode != "elastic":
            sys.exit("error: --scenario chaos requires --mode elastic")
        proxy_bin = os.path.join(args.build_dir, "tools", "chaos_proxy")
        if not os.path.exists(proxy_bin):
            sys.exit(f"error: {proxy_bin} not found (build the 'chaos_proxy' target)")
        run_chaos(args, server_bin, client_bin, proxy_bin)
        print("run_federation: all checks passed")
        return

    if args.scenario == "overload":
        if args.mode != "elastic":
            sys.exit("error: --scenario overload requires --mode elastic")
        run_overload(args, server_bin, client_bin)
        print("run_federation: all checks passed")
        return

    with tempfile.TemporaryDirectory(prefix="fedkemf_") as tmp:
        endpoint = args.endpoint or f"unix://{tmp}/fed.sock"
        logs, procs = {}, []

        def launch(name, argv):
            log = os.path.join(tmp, name + ".log")
            logs[name] = log
            with open(log, "w") as f:
                p = subprocess.Popen(argv, stdout=f, stderr=subprocess.STDOUT)
            procs.append((name, p))
            return p

        reference_json = os.path.join(tmp, "reference.json")
        if args.check_parity:
            print(f"running in-process reference ({args.algorithm}, "
                  f"{args.clients} clients, {args.rounds} rounds)...")
            subprocess.run([server_bin, "--mode", "reference", "--quiet",
                            "--results", reference_json] + spec_args(args), check=True)

        server_json = os.path.join(tmp, "server.json")
        if args.mode == "mirror":
            server_argv = [server_bin, "--mode", "mirror", "--endpoint", endpoint,
                           "--expect-clients", str(args.clients), "--quiet",
                           "--results", server_json] + spec_args(args)
            client_argvs = [
                [client_bin, "--mode", "mirror", "--endpoint", endpoint,
                 "--own", str(i)] + spec_args(args)
                for i in range(args.clients)
            ]
        else:
            server_argv = [server_bin, "--mode", "elastic", "--endpoint", endpoint,
                           "--min-clients", str(args.clients), "--quiet",
                           "--upload-timeout", str(args.upload_timeout),
                           "--results", server_json] + spec_args(args)
            client_argvs = [
                [client_bin, "--mode", "elastic", "--endpoint", endpoint,
                 "--id", str(i), "--train-delay", str(args.train_delay)] + spec_args(args)
                for i in range(args.clients)
            ]

        print(f"launching {args.mode} federation: 1 server + {args.clients} clients "
              f"over {endpoint}")
        server = launch("server", server_argv)
        clients = [launch(f"client{i}", argv) for i, argv in enumerate(client_argvs)]

        if args.scenario == "kill-restart":
            victim = clients[-1]
            time.sleep(1.5)
            if victim.poll() is None:
                victim.kill()
                print("  killed client (SIGKILL); restarting with --rejoin in 0.5s")
                time.sleep(0.5)
                launch("client-rejoin",
                       client_argvs[-1] + ["--rejoin"])
            else:
                print("  warning: run finished before the kill landed; scenario was a no-op")
        elif args.scenario == "sigterm":
            time.sleep(1.5)
            if server.poll() is None:
                print("  sending SIGTERM to the server (graceful shutdown)")
                server.send_signal(signal.SIGTERM)

        codes = wait_all(procs, args.timeout)
        # An elastic client that was deliberately SIGKILLed reports -9; that is
        # the scenario, not a failure.  Same for workers cut off by a sigterm'd
        # or finished server (they exit 0 via BYE handling).
        if args.scenario == "kill-restart":
            codes = [(n, 0 if (n == f"client{args.clients - 1}" and c == -9) else c)
                     for n, c in codes]
        if not report(codes, logs):
            sys.exit("error: a federation process failed")

        result = load_json(server_json)
        print(f"distributed result: final_accuracy={result['final_accuracy']} "
              f"total_bytes={result['total_bytes']} rounds={result['rounds_completed']}")

        if args.check_parity:
            failures = check_parity(reference_json, server_json)
            if failures:
                for f in failures:
                    print("  parity FAILED:", f)
                sys.exit("error: distributed run diverged from the in-process reference")
            print("parity OK: distributed == in-process reference (accuracy and bytes)")

        if args.scenario == "kill-restart":
            if result["total_left"] < 1:
                sys.exit("error: kill-restart scenario recorded no departure")
            print(f"churn OK: joined={result['total_joined']} left={result['total_left']} "
                  f"stale_applied={result['total_stale_applied']}")
        elif args.scenario == "sigterm":
            if not result["interrupted"] and result["rounds_completed"] == args.rounds:
                print("  note: run finished before the SIGTERM landed")
            else:
                print(f"graceful shutdown OK: interrupted={result['interrupted']} after "
                      f"{result['rounds_completed']} rounds")
    print("run_federation: all checks passed")


if __name__ == "__main__":
    main()
