// Federation client process.
//
//   mirror   a lockstep replica: runs the same seeded run_federated as the
//            server and plays the client ids in --own over the wire.
//   elastic  a stateless worker for --id: TASK -> local SGD -> UPLOAD until
//            the server hangs up.  Kill and restart it (--rejoin) and the
//            server folds the absence into churn + staleness accounting.
//
//   ./tools/fed_client --mode mirror --endpoint unix:///tmp/fed.sock --own 0,1,2
//   ./tools/fed_client --mode elastic --endpoint unix:///tmp/fed.sock --id 4

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "fed_common.hpp"
#include "fl/runner.hpp"

namespace {

std::vector<std::size_t> parse_id_list(const std::string& text) {
  std::vector<std::size_t> ids;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) ids.push_back(std::stoul(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedkemf;

  tools::SpecFlags flags;
  std::string mode = "mirror";
  std::string endpoint = "unix:///tmp/fedkemf.sock";
  std::string own = "0";
  std::size_t id = 0;
  bool rejoin = false;
  double connect_timeout = 30.0;
  double await_timeout = 600.0;
  double train_delay = 0.0;
  std::size_t max_reconnects = 16;
  double server_silence = 30.0;
  std::string auth_key;
  std::string results;

  utils::Cli cli("fed_client", "federation client (mirror replica | elastic worker)");
  tools::register_spec_flags(cli, flags);
  cli.flag("mode", &mode, "mirror | elastic");
  cli.flag("endpoint", &endpoint, "tcp://host:port or unix:///path");
  cli.flag("own", &own, "mirror: comma-separated client ids this replica plays");
  cli.flag("id", &id, "elastic: the single client id this worker serves");
  cli.flag("rejoin", &rejoin, "elastic: this is a reconnect after a restart");
  cli.flag("connect-timeout", &connect_timeout, "seconds to wait for the server socket");
  cli.flag("await-timeout", &await_timeout, "mirror: per-await deadline seconds");
  cli.flag("train-delay", &train_delay,
           "elastic: artificial seconds of extra training time (straggler lever)");
  cli.flag("max-reconnects", &max_reconnects,
           "elastic: auto-reconnect budget after a lost connection (0 disables)");
  cli.flag("server-silence", &server_silence,
           "elastic: reconnect when no frame arrives for this many seconds");
  cli.flag("auth-key", &auth_key,
           "shared secret for SipHash frame authentication (must match the server)");
  cli.flag("results", &results,
           "write this process's run summary JSON here (mirror and elastic)");
  cli.parse(argc, argv);

  fl::install_shutdown_handler();
  const net::FedSpec spec = tools::to_spec(flags);

  try {
    if (mode == "mirror") {
      net::MirrorClientOptions options;
      options.endpoint = net::Endpoint::parse(endpoint);
      options.owned = parse_id_list(own);
      options.connect_timeout_seconds = connect_timeout;
      options.await_timeout_seconds = await_timeout;
      options.auth_key = auth_key;
      const fl::RunResult result = net::run_mirror_client(spec, options);
      std::printf("mirror replica done: rounds=%zu final_accuracy=%.17g\n",
                  result.rounds_completed, result.final_accuracy);
      if (!results.empty()) net::write_result_json(results, "mirror-client", result);
    } else if (mode == "elastic") {
      net::ElasticClientOptions options;
      options.endpoint = net::Endpoint::parse(endpoint);
      options.client_id = id;
      options.rejoin = rejoin;
      options.connect_timeout_seconds = connect_timeout;
      options.train_delay_seconds = train_delay;
      options.max_reconnects = max_reconnects;
      options.server_silence_timeout_seconds = server_silence;
      options.auth_key = auth_key;
      const net::ElasticClientResult served = net::run_elastic_client(spec, options);
      std::printf("elastic client %zu done: rounds_served=%zu reconnects=%zu%s\n", id,
                  served.rounds_served, served.reconnects,
                  served.interrupted ? " (interrupted)" : "");
      if (!results.empty()) net::write_client_result_json(results, served);
    } else {
      std::fprintf(stderr, "fed_client: unknown --mode '%s'\n", mode.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fed_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
