// Resource-aware deployment analysis (the paper's motivating claim).
//
// "Simply deploying a uniform model to all resource-heterogeneous edge
// clients is inefficient, since some resource-poor clients will limit the FL
// system's computational overhead."  This bench quantifies that with the
// fl::resources device model: per-round wall-clock makespan of a three-tier
// edge fleet (phone / gateway / workstation) under
//   (a) uniform deployments of each zoo model + full-model exchange, and
//   (b) FedKEMF's matched multi-model deployment + knowledge-net exchange.

#include "bench_common.hpp"
#include "fl/resources.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::size_t shard_samples = 1600;  // paper-scale per-client shard (CIFAR/30)
  std::size_t local_epochs = 2;
  std::string csv_dir = "results";

  utils::Cli cli("bench_resource_aware",
                 "Round-makespan analysis: uniform vs multi-model deployment");
  cli.flag("shard-samples", &shard_samples, "training samples per client");
  cli.flag("local-epochs", &local_epochs, "local epochs per round");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const auto fleet = fl::DeviceClass::standard_fleet();
  auto full_spec = [](const char* arch) {
    return models::ModelSpec{.arch = arch, .num_classes = 10, .in_channels = 3,
                             .image_size = 32, .width_multiplier = 1.0};
  };

  // Per-device detail for a uniform VGG-11 fleet vs the matched zoo.
  utils::Table detail({"Device", "Deployment", "Model", "Compute (s)", "Transfer (s)",
                       "Total (s)"});
  const char* zoo[3] = {"resnet20", "resnet32", "resnet44"};
  std::vector<fl::ClientRoundCost> uniform_costs;
  std::vector<fl::ClientRoundCost> matched_costs;
  for (std::size_t d = 0; d < fleet.size(); ++d) {
    const fl::ClientRoundCost uniform = fl::estimate_client_round(
        fleet[d], full_spec("vgg11"), shard_samples, local_epochs,
        full_width_round_bytes("vgg11", "fedavg"));
    const fl::ClientRoundCost matched = fl::estimate_client_round(
        fleet[d], full_spec(zoo[d]), shard_samples, local_epochs,
        full_width_round_bytes(zoo[d], "fedkemf"));
    uniform_costs.push_back(uniform);
    matched_costs.push_back(matched);
    detail.row().cell(fleet[d].name).cell("uniform").cell("vgg11")
        .cell(uniform.compute_seconds, 1).cell(uniform.transfer_seconds, 1)
        .cell(uniform.total_seconds(), 1);
    detail.row().cell(fleet[d].name).cell("matched").cell(zoo[d])
        .cell(matched.compute_seconds, 1).cell(matched.transfer_seconds, 1)
        .cell(matched.total_seconds(), 1);
  }
  emit("Per-device round cost: uniform VGG-11 + FedAvg exchange vs FedKEMF's "
       "matched ResNet zoo + knowledge-net exchange",
       detail, csv_dir.empty() ? "" : csv_dir + "/resource_aware_detail.csv");

  // Fleet summary across uniform deployments of every model + matched.
  utils::Table summary({"Deployment", "Makespan (s)", "Mean (s)", "Utilization",
                        "Speedup vs uniform vgg11"});
  const fl::FleetCostSummary uniform_summary = fl::summarize_fleet(uniform_costs);
  auto add_uniform = [&](const char* arch) {
    std::vector<fl::ClientRoundCost> costs;
    for (const auto& device : fleet) {
      costs.push_back(fl::estimate_client_round(
          device, full_spec(arch), shard_samples, local_epochs,
          full_width_round_bytes(arch, "fedavg")));
    }
    const auto s = fl::summarize_fleet(costs);
    summary.row().cell(std::string("uniform ") + arch).cell(s.makespan_seconds, 1)
        .cell(s.mean_seconds, 1).cell(s.utilization, 2)
        .cell(utils::format_speedup(uniform_summary.makespan_seconds / s.makespan_seconds));
  };
  add_uniform("vgg11");
  add_uniform("resnet44");
  add_uniform("resnet20");
  const fl::FleetCostSummary matched_summary = fl::summarize_fleet(matched_costs);
  summary.row().cell("FedKEMF matched zoo").cell(matched_summary.makespan_seconds, 1)
      .cell(matched_summary.mean_seconds, 1).cell(matched_summary.utilization, 2)
      .cell(utils::format_speedup(uniform_summary.makespan_seconds /
                                  matched_summary.makespan_seconds));
  emit("Fleet round makespan (synchronous FL waits for the slowest client)", summary,
       csv_dir.empty() ? "" : csv_dir + "/resource_aware_summary.csv");
  return 0;
}
