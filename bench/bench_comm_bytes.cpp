// Communication byte accounting (the byte columns of Tables 1 & 2).
//
// Serializes every full-width model in the zoo through the real wire format
// and prints parameter counts, one-way payloads, per-round-per-client costs
// for every algorithm, and the knowledge-network savings ratios the paper
// headlines (VGG-11 up to ~102x vs the 2x-per-round baselines, ResNet-32 up
// to ~30x when scaled by rounds-to-target differences).

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string csv_dir = "results";
  utils::Cli cli("bench_comm_bytes",
                 "Full-width model payload accounting (Tables 1/2 byte columns)");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const std::vector<std::string> archs = {"cnn2", "resnet20", "resnet32", "resnet44",
                                          "vgg11"};

  utils::Table models_table({"Model", "Parameters", "One-way payload", "FedAvg/FedProx",
                             "FedNova", "SCAFFOLD", "FedKEMF (kn=ResNet-20)"});
  BenchReport report("comm_bytes");
  for (const std::string& arch : archs) {
    const models::ModelSpec spec{.arch = arch, .num_classes = 10, .in_channels = 3,
                                 .image_size = 32, .width_multiplier = 1.0};
    core::Rng rng(0);
    auto model = models::build_model(spec, rng);
    const std::size_t params = model->parameter_count();
    const std::size_t wire = comm::model_wire_size(*model);
    report.add(arch + "/one_way_payload", static_cast<double>(wire), "bytes");
    for (const char* algorithm : {"fedavg", "fednova", "scaffold", "fedkemf"}) {
      report.add(arch + "/round_bytes/" + algorithm,
                 static_cast<double>(full_width_round_bytes(arch, algorithm)), "bytes");
    }
    models_table.row()
        .cell(arch)
        .cell(static_cast<std::int64_t>(params))
        .cell(utils::format_bytes(static_cast<double>(wire)))
        .cell(utils::format_bytes(
            static_cast<double>(full_width_round_bytes(arch, "fedavg"))))
        .cell(utils::format_bytes(
            static_cast<double>(full_width_round_bytes(arch, "fednova"))))
        .cell(utils::format_bytes(
            static_cast<double>(full_width_round_bytes(arch, "scaffold"))))
        .cell(utils::format_bytes(
            static_cast<double>(full_width_round_bytes(arch, "fedkemf"))));
  }
  emit("Per-round-per-client payloads at full model width (down + up)", models_table,
       csv_dir.empty() ? "" : csv_dir + "/comm_bytes_models.csv");

  utils::Table ratio_table({"Local model", "vs FedAvg", "vs FedNova", "vs SCAFFOLD"});
  const double kemf = static_cast<double>(full_width_round_bytes("vgg11", "fedkemf"));
  for (const std::string& arch : {std::string("resnet32"), std::string("resnet44"),
                                  std::string("vgg11")}) {
    ratio_table.row()
        .cell(arch)
        .cell(utils::format_speedup(
            static_cast<double>(full_width_round_bytes(arch, "fedavg")) / kemf))
        .cell(utils::format_speedup(
            static_cast<double>(full_width_round_bytes(arch, "fednova")) / kemf))
        .cell(utils::format_speedup(
            static_cast<double>(full_width_round_bytes(arch, "scaffold")) / kemf));
  }
  emit("FedKEMF per-round savings factor (knowledge net = ResNet-20); the paper's "
       "headline factors additionally multiply in the rounds-to-target advantage",
       ratio_table, csv_dir.empty() ? "" : csv_dir + "/comm_bytes_ratios.csv");
  if (!csv_dir.empty()) report.write(csv_dir);
  return 0;
}
