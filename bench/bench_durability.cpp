// Durability-tax bench: sustained UPLOAD throughput against the epoll
// server with the write-ahead log off vs on.
//
// Same traffic shape as bench_throughput (N client threads, serial
// upload -> ACK loops, a drain thread sweeping parked uploads), run twice
// per repetition: once volatile and once with a WriteAheadLog attached, so
// every parked upload is journaled (payload included) and every drained
// upload appends a stale-applied record — exactly what fed_server
// --wal-dir pays per upload.  Checkpoint writes are round-granular, not
// per-upload, so they are out of scope here (bench_recovery times round
// wall-clock).
//
// The suite self-gates against the *recorded* throughput path: the run
// exits nonzero when the WAL leg's median ns/upload exceeds the
// `net_upload/<clients>clients/cost` entry of --baseline (the
// bench_throughput numbers in results/bench_baseline.json) by more than
// --max-overhead (default 15%).  Durability must stay within the known
// transport envelope; the volatile leg is measured alongside and the
// off-vs-on tax printed for information — on a single-core box that A/B
// ratio is bounded below by disk bandwidth (every upload byte is written
// once more), while against the recorded envelope the WAL leg has real
// headroom.  Metrics land in results/BENCH_durability.json time-shaped
// (ns per upload, RTT percentiles) for the perf-regression gate.

#include "bench_common.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <thread>

#include "net/server.hpp"
#include "net/session.hpp"
#include "net/wal.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double index = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(index);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = index - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

struct SweepResult {
  double elapsed_seconds = 0.0;  ///< measured phase, barrier to last ACK
  std::size_t uploads = 0;       ///< measured uploads across all clients
  std::vector<double> rtt_ns;    ///< pooled upload -> ACK round trips, sorted
  std::size_t wal_records = 0;   ///< appended by this leg (0 when volatile)
};

/// One leg: `clients` concurrent sessions, each sending `warmup + uploads`
/// payloads; with `wal_dir` non-empty the server journals every one.
SweepResult run_sweep(const net::Endpoint& endpoint, std::size_t clients,
                      std::size_t warmup, std::size_t uploads,
                      std::size_t payload_bytes, const std::string& wal_dir) {
  net::EpollServer server(endpoint);
  std::optional<net::WriteAheadLog> wal;
  if (!wal_dir.empty()) {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    wal.emplace(wal_dir + "/wal.log");
    server.set_wal(&*wal);
  }
  server.start();

  // The parked-upload map would otherwise hold every frame of the run;
  // sweeping it is what the elastic round loop does with late arrivals
  // (and with a WAL attached each drain appends its stale-applied record).
  std::atomic<bool> draining{true};
  std::thread drainer([&] {
    while (draining.load()) {
      (void)server.take_stale_uploads(0xFFFFFFFFu);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 1315423911u >> 16);
  }

  std::atomic<std::size_t> warmed{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> rtts(clients);
  std::vector<double> done_at(clients, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  for (std::size_t id = 0; id < clients; ++id) {
    threads.emplace_back([&, id] {
      net::ClientSession session(endpoint, net::Deadline::after(30.0), net::FrameLimits{},
                                 /*collect_acks=*/true);
      net::HelloRequest hello;
      hello.mode = 1;
      hello.algorithm = "bench";
      hello.owned_clients = {static_cast<std::uint32_t>(id)};
      session.hello(hello, net::Deadline::after(30.0));

      net::Frame frame;
      frame.type = net::FrameType::kUpload;
      frame.client = static_cast<std::uint32_t>(id);
      frame.name = "payload";
      frame.body = payload;

      auto round_trip = [&](std::uint32_t round) {
        frame.round = round;
        const net::Deadline deadline = net::Deadline::after(60.0);
        const double sent = now_seconds();
        session.send(frame, deadline);
        if (!session.await_ack(round, frame.client, frame.name, deadline)) {
          throw net::IoTimeout("bench_durability: ACK never arrived");
        }
        return (now_seconds() - sent) * 1e9;
      };

      std::uint32_t round = 0;
      for (std::size_t i = 0; i < warmup; ++i) (void)round_trip(round++);
      warmed.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      rtts[id].reserve(uploads);
      for (std::size_t i = 0; i < uploads; ++i) rtts[id].push_back(round_trip(round++));
      done_at[id] = now_seconds();
      session.close();
    });
  }

  while (warmed.load() < clients) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double started = now_seconds();
  go.store(true);
  for (std::thread& thread : threads) thread.join();
  draining.store(false);
  drainer.join();
  server.stop();

  SweepResult result;
  result.elapsed_seconds = *std::max_element(done_at.begin(), done_at.end()) - started;
  for (std::vector<double>& samples : rtts) {
    result.uploads += samples.size();
    result.rtt_ns.insert(result.rtt_ns.end(), samples.begin(), samples.end());
  }
  std::sort(result.rtt_ns.begin(), result.rtt_ns.end());
  if (wal) result.wal_records = wal->records_appended();
  return result;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Pulls `"name": "<entry>" ... "real_time": <value>` out of a
/// google-benchmark-shaped baseline file.  Returns 0 when the file or the
/// entry is missing (the caller skips the gate with a warning).
double recorded_baseline_cost(const std::string& path, const std::string& entry) {
  std::ifstream file(path);
  if (!file) return 0.0;
  const std::string blob((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
  const std::size_t name_at = blob.find("\"" + entry + "\"");
  if (name_at == std::string::npos) return 0.0;
  const std::string key = "\"real_time\":";
  const std::size_t key_at = blob.find(key, name_at);
  if (key_at == std::string::npos) return 0.0;
  return std::strtod(blob.c_str() + key_at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 4;
  std::size_t uploads = 300;
  std::size_t warmup = 30;
  std::size_t payload_bytes = 65536;
  std::size_t reps = 3;
  double max_overhead = 0.15;
  std::string baseline = "results/bench_baseline.json";
  std::string endpoint_uri;
  std::string csv_dir = "results";

  utils::Cli cli("bench_durability",
                 "upload throughput with the write-ahead log off vs on");
  cli.flag("clients", &clients, "concurrent client sessions");
  cli.flag("uploads", &uploads, "measured uploads per client per leg");
  cli.flag("warmup", &warmup, "untimed warmup uploads per client per leg");
  cli.flag("payload-bytes", &payload_bytes, "UPLOAD body size in bytes");
  cli.flag("reps", &reps, "alternating off/on repetitions (median decides)");
  cli.flag("max-overhead", &max_overhead,
           "fail when the median WAL-on cost exceeds the recorded "
           "bench_throughput cost by more than this fraction (0 disables)");
  cli.flag("baseline", &baseline,
           "recorded bench numbers holding the net_upload/<N>clients/cost "
           "entry the WAL leg is gated against ('' = skip the gate)");
  cli.flag("endpoint", &endpoint_uri,
           "tcp://host:port or unix:///path ('' = fresh unix socket in /tmp)");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);
  reps = std::max<std::size_t>(1, reps);

  const std::string wal_dir =
      "/tmp/fedkemf_bench_durability_" + std::to_string(::getpid());
  auto endpoint_for = [&](const std::string& tag) {
    return net::Endpoint::parse(
        endpoint_uri.empty() ? "unix:///tmp/fedkemf_bench_durability_" +
                                   std::to_string(::getpid()) + "_" + tag + ".sock"
                             : endpoint_uri);
  };

  // Alternate the legs so drift (thermal, cache, a noisy neighbor) lands on
  // both sides; the median repetition decides the gate.
  std::vector<double> cost_off, cost_on;
  SweepResult last_off, last_on;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    last_off = run_sweep(endpoint_for("off"), clients, warmup, uploads,
                         payload_bytes, "");
    cost_off.push_back(last_off.elapsed_seconds * 1e9 /
                       static_cast<double>(last_off.uploads));
    last_on = run_sweep(endpoint_for("on"), clients, warmup, uploads,
                        payload_bytes, wal_dir);
    cost_on.push_back(last_on.elapsed_seconds * 1e9 /
                      static_cast<double>(last_on.uploads));
  }
  std::filesystem::remove_all(wal_dir);

  utils::Table table({"WAL", "Uploads/s", "MiB/s", "ns/upload", "p50 RTT", "p99 RTT"});
  BenchReport report("durability");
  const SweepResult* sweeps[2] = {&last_off, &last_on};
  const double costs[2] = {median(cost_off), median(cost_on)};
  const char* labels[2] = {"off", "on"};
  for (int leg = 0; leg < 2; ++leg) {
    const SweepResult& sweep = *sweeps[leg];
    const double rate = 1e9 / costs[leg];
    char rate_text[32], mib_text[32], cost_text[32], p50_text[32], p99_text[32];
    std::snprintf(rate_text, sizeof(rate_text), "%.0f", rate);
    std::snprintf(mib_text, sizeof(mib_text), "%.1f",
                  rate * static_cast<double>(payload_bytes) / (1024.0 * 1024.0));
    std::snprintf(cost_text, sizeof(cost_text), "%.0f", costs[leg]);
    std::snprintf(p50_text, sizeof(p50_text), "%.1f us",
                  percentile(sweep.rtt_ns, 0.50) / 1e3);
    std::snprintf(p99_text, sizeof(p99_text), "%.1f us",
                  percentile(sweep.rtt_ns, 0.99) / 1e3);
    table.row()
        .cell(labels[leg])
        .cell(rate_text)
        .cell(mib_text)
        .cell(cost_text)
        .cell(p50_text)
        .cell(p99_text);
    const std::string prefix = std::string("durability/wal_") + labels[leg] + "/";
    report.add(prefix + "cost", costs[leg], "ns");
    report.add(prefix + "p50_rtt", percentile(sweep.rtt_ns, 0.50), "ns");
    report.add(prefix + "p99_rtt", percentile(sweep.rtt_ns, 0.99), "ns");
  }

  emit("Upload throughput, WAL off vs on (" + std::to_string(clients) +
           " clients, " + std::to_string(payload_bytes) + "-byte payloads, " +
           std::to_string(last_on.wal_records) + " records journaled per WAL leg)",
       table, csv_dir.empty() ? "" : csv_dir + "/durability.csv");
  report.write(csv_dir.empty() ? "results" : csv_dir);
  std::printf("durability tax: %+.1f%% ns/upload over the volatile leg\n",
              (costs[1] / costs[0] - 1.0) * 100.0);

  if (max_overhead <= 0.0 || baseline.empty()) return 0;
  const std::string entry = "net_upload/" + std::to_string(clients) + "clients/cost";
  const double recorded = recorded_baseline_cost(baseline, entry);
  if (recorded <= 0.0) {
    std::fprintf(stderr,
                 "bench_durability: no '%s' entry in '%s'; skipping the gate\n",
                 entry.c_str(), baseline.c_str());
    return 0;
  }
  const double vs_recorded = costs[1] / recorded - 1.0;
  std::printf("gate: WAL-on %.0f ns/upload vs recorded %s %.0f ns (%+.1f%%, limit +%.0f%%)\n",
              costs[1], entry.c_str(), recorded, vs_recorded * 100.0,
              max_overhead * 100.0);
  if (vs_recorded > max_overhead) {
    std::fprintf(stderr,
                 "bench_durability: WAL-on cost exceeds the recorded throughput "
                 "path by %.1f%% (gate %.0f%%)\n",
                 vs_recorded * 100.0, max_overhead * 100.0);
    return 1;
  }
  return 0;
}
