// Table 3 reproduction: multi-model federated learning.
//
// Baselines deploy one uniform ResNet-20 across all clients and are
// evaluated as the mean per-client local accuracy of the single global
// model.  FedKEMF runs a heterogeneous fleet — ResNet-20/32/44 assigned
// round-robin by client resource class — and is evaluated as the mean local
// accuracy of each client's own persistent model.  This reproduces the
// paper's protocol: "we allocate each client a local dataset and evaluate
// the average accuracy among all edge clients".

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 12;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_table3_multimodel",
                 "Reproduces Table 3: multi-model federated learning");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients (paper: 50)");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio (paper: 0.5)");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec knowledge_spec =
      model_spec("resnet20", data, scale.width_multiplier);

  utils::Table table({"Method", "Model", "Clients", "Ratio", "Average Acc."});

  auto run_one = [&](const std::string& label, const std::string& model_label,
                     std::unique_ptr<fl::Algorithm> algorithm) {
    fl::FederationOptions fed_options;
    fed_options.data = data;
    fed_options.train_samples = scale.train_samples;
    fed_options.test_samples = scale.test_samples;
    fed_options.server_pool_samples = scale.server_pool;
    fed_options.num_clients = clients;
    fed_options.dirichlet_alpha = alpha;
    fed_options.seed = seed;
    fl::Federation federation(fed_options);

    fl::RunOptions run;
    run.rounds = scale.rounds;
    run.sample_ratio = sample_ratio;
    run.eval_every = scale.rounds;  // only the final evaluation matters here
    run.evaluate_client_models = true;
    const fl::RunResult result = fl::run_federated(federation, *algorithm, run);
    table.row()
        .cell(label)
        .cell(model_label)
        .cell(static_cast<std::int64_t>(clients))
        .cell(sample_ratio, 1)
        .cell(utils::format_percent(result.history.back().client_accuracy));
  };

  const models::ModelSpec r20 = model_spec("resnet20", data, scale.width_multiplier);
  run_one("FedAvg", "ResNet-20", make_algorithm("fedavg", r20, knowledge_spec, local));
  run_one("FedNova", "ResNet-20", make_algorithm("fednova", r20, knowledge_spec, local));
  run_one("FedProx", "ResNet-20", make_algorithm("fedprox", r20, knowledge_spec, local));

  {
    // Heterogeneous zoo: clients are assigned ResNet-20/32/44 round-robin,
    // modelling three edge resource classes.
    std::vector<models::ModelSpec> zoo = {
        model_spec("resnet20", data, scale.width_multiplier),
        model_spec("resnet32", data, scale.width_multiplier),
        model_spec("resnet44", data, scale.width_multiplier),
    };
    auto fedkemf =
        std::make_unique<fl::FedKemf>(zoo, local, default_kemf(knowledge_spec));
    run_one("FedKEMF", "Multi-model (R20/32/44)", std::move(fedkemf));
  }

  emit("Table 3: multi-model federated learning (mean per-client local accuracy)",
       table, csv_dir.empty() ? "" : csv_dir + "/table3_multimodel.csv");
  return 0;
}
