// Table 2 reproduction: communication cost and accuracy at convergence.
//
// Columns mirror the paper: Method, Clients, Model, Sample Ratio, Converge
// Rounds, Round/Client, Total, Speedup, Converge Acc., ΔAcc (vs FedAvg in
// the same model/clients group).  Convergence detection follows the
// "no further improvement beyond tolerance" rule in fl::RunResult.

#include <cmath>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

struct Group {
  std::size_t clients;
  double sample_ratio;
};

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  double alpha = 0.1;
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_table2_comm_cost_convergence",
                 "Reproduces Table 2: communication cost at model convergence");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);

  // Scaled stand-ins for the paper's (30, 0.4), (50, 0.7), (100, 0.5) groups.
  const std::vector<Group> groups = {{10, 0.5}, {14, 0.7}};
  const std::vector<std::string> algorithms = {"fedavg", "fednova", "fedprox", "scaffold",
                                               "fedkemf"};

  utils::Table table({"Method", "Clients", "Model", "Ratio", "Converge Rounds",
                      "Round/Client", "Total", "Speedup", "Converge Acc.", "dAcc"});

  std::map<std::string, double> fedavg_total;
  std::map<std::string, double> fedavg_acc;

  for (const std::string& name : algorithms) {
    for (const Group& group : groups) {
      for (const std::string& arch : {std::string("resnet20"), std::string("resnet32"),
                                      std::string("vgg11")}) {
        if (arch == "vgg11" && group.clients != groups.front().clients) continue;

        fl::FederationOptions fed_options;
        fed_options.data = data;
        fed_options.train_samples = scale.train_samples;
        fed_options.test_samples = scale.test_samples;
        fed_options.server_pool_samples = scale.server_pool;
        fed_options.num_clients = group.clients;
        fed_options.dirichlet_alpha = alpha;
        fed_options.seed = seed;
        fl::Federation federation(fed_options);

        const models::ModelSpec client_spec = model_spec(arch, data, scale.width_multiplier);
        const models::ModelSpec knowledge_spec =
            model_spec("resnet20", data, scale.width_multiplier);
        auto algorithm = make_algorithm(name, client_spec, knowledge_spec, local);

        fl::RunOptions run;
        run.rounds = scale.rounds;
        run.sample_ratio = group.sample_ratio;
        run.eval_every = 2;
        const fl::RunResult result = fl::run_federated(federation, *algorithm, run);

        const std::size_t converge_rounds = result.convergence_round();
        const double converge_acc = result.convergence_accuracy();
        const std::size_t per_round_client = full_width_round_bytes(arch, name);
        const std::size_t sampled = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::lround(group.sample_ratio *
                                                    static_cast<double>(group.clients))));
        const double total_bytes = static_cast<double>(converge_rounds) *
                                   static_cast<double>(per_round_client) *
                                   static_cast<double>(sampled);

        const std::string key = arch + "/" + std::to_string(group.clients);
        if (name == "fedavg") {
          fedavg_total[key] = total_bytes;
          fedavg_acc[key] = converge_acc;
        }
        const double base_total =
            fedavg_total.count(key) ? fedavg_total[key] : total_bytes;
        const double base_acc = fedavg_acc.count(key) ? fedavg_acc[key] : converge_acc;
        const double dacc = converge_acc - base_acc;

        table.row()
            .cell(algorithm_label(name))
            .cell(static_cast<std::int64_t>(group.clients))
            .cell(arch)
            .cell(group.sample_ratio, 1)
            .cell(static_cast<std::int64_t>(converge_rounds))
            .cell(utils::format_bytes(static_cast<double>(per_round_client)))
            .cell(utils::format_bytes(total_bytes))
            .cell(utils::format_speedup(base_total / total_bytes))
            .cell(utils::format_percent(converge_acc))
            .cell((dacc >= 0 ? "+" : "") + utils::format_percent(dacc));
      }
    }
  }

  emit("Table 2: communication cost and accuracy at convergence "
       "(byte columns at full model width)",
       table, csv_dir.empty() ? "" : csv_dir + "/table2_comm_cost_convergence.csv");
  return 0;
}
