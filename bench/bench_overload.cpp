// Overload robustness: peak memory stays flat as the *registered* population
// grows 10^3 -> 10^5 while the participating cohort is fixed.
//
// Each population runs the same short FedKEMF federation under churn with the
// full overload policy engaged: a core::MemoryBudget bounding uploads, stale
// entries, and retained client state; a SpillStore receiving departed
// clients' private models; and a fusion-member cap that sheds the
// lowest-priority members when the cohort outgrows it.  Registered clients
// beyond the cohort are ChurnModel phantom registrations — each costs one
// byte of membership state, so server memory must NOT scale with them.
//
// The claim under test (ISSUE 9 acceptance): process peak RSS after the
// 10^5-registration run is at most `--rss-tolerance` (default 1.15x) the
// peak after the 10^3 run.  VmHWM is monotone across the process, so any
// per-registration memory cost in the later, larger runs would push the
// high-water mark up and fail the ratio.  The binary exits non-zero when the
// bound (or the graceful-degradation engagement checks) fails, so it doubles
// as a CI gate; deterministic shed/spill/degraded counters land in
// results/BENCH_overload.json for the regression checker.

#include "bench_common.hpp"

#include <limits>

#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 8;
  std::size_t rounds = 6;
  std::size_t seed = 1;
  double leave_prob = 0.25;
  double rejoin_prob = 0.35;
  std::size_t departed_retention = 1;
  std::size_t budget_mb = 64;
  std::size_t max_fusion_members = 3;
  double deadline = 0.35;
  double rss_tolerance = 1.15;
  std::string spill_dir = "results/overload_spill";
  std::string csv_dir = "results";

  utils::Cli cli("bench_overload",
                 "peak-RSS flatness under 10^3 -> 10^5 registered clients");
  cli.flag("clients", &clients, "participating cohort size (fixed across populations)");
  cli.flag("rounds", &rounds, "federated rounds per population");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("leave-prob", &leave_prob, "per-round departure probability");
  cli.flag("rejoin-prob", &rejoin_prob, "per-round re-enrollment probability");
  cli.flag("departed-retention", &departed_retention,
           "departed clients retained before spill-eviction");
  cli.flag("budget-mb", &budget_mb, "aggregation memory budget in MiB");
  cli.flag("max-fusion-members", &max_fusion_members,
           "fusion cohort cap (degraded rounds shed beyond it)");
  cli.flag("deadline", &deadline,
           "round deadline in simulated seconds (stragglers feed the stale buffer)");
  cli.flag("rss-tolerance", &rss_tolerance,
           "max allowed peak-RSS ratio, largest vs smallest population");
  cli.flag("spill-dir", &spill_dir, "directory for spilled client state");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  // Deliberately tiny federation: the subject is server bookkeeping at
  // registration scale, not learning quality, so compute stays in the noise.
  BenchScale scale = BenchScale::named("quick");
  scale.image_size = 10;
  scale.train_samples = 512;
  scale.test_samples = 160;
  scale.server_pool = 128;
  scale.rounds = rounds;
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("cnn2", data, scale.width_multiplier);

  const std::size_t populations[] = {1'000, 10'000, 100'000};

  utils::Table table({"Registered", "Scale", "Peak RSS (MB)", "RSS (MB)", "Final Acc.",
                      "Spilled", "Degraded", "Shed members"});
  BenchReport report("overload");

  std::size_t baseline_peak = 0;
  std::size_t final_peak = 0;
  std::uint64_t total_spilled = 0;
  std::uint64_t total_degraded = 0;
  std::uint64_t total_shed = 0;

  for (const std::size_t population : populations) {
    const std::size_t population_scale = population / clients;

    fl::FederationOptions fed_options;
    fed_options.data = data;
    fed_options.train_samples = scale.train_samples;
    fed_options.test_samples = scale.test_samples;
    fed_options.server_pool_samples = scale.server_pool;
    fed_options.num_clients = clients;
    fed_options.dirichlet_alpha = 0.5;
    fed_options.seed = seed;
    fl::Federation federation(fed_options);

    auto algorithm = make_algorithm("fedkemf", spec, spec, local);

    fl::RunOptions run;
    run.rounds = scale.rounds;
    run.sample_ratio = 1.0;
    run.eval_every = scale.rounds;  // one final evaluation per population
    run.sim = sim::SimOptions{};
    run.sim->deadline_seconds = deadline;
    run.sim->churn.leave_prob = leave_prob;
    run.sim->churn.rejoin_prob = rejoin_prob;
    run.sim->churn.departed_state_retention = departed_retention;
    run.sim->churn.population_scale = population_scale;
    run.staleness = fl::StalenessOptions{.alpha = 0.5, .buffer_capacity = 16};
    run.resources = fl::ResourceLimits{.memory_budget_bytes = budget_mb << 20,
                                       .max_fusion_members = max_fusion_members,
                                       .spill_dir = spill_dir};

    const std::uint64_t spilled_before = counter_value("fl.spill.stored");
    const std::uint64_t degraded_before = counter_value("fl.fusion.degraded_rounds");
    const std::uint64_t shed_before = counter_value("fl.fusion.shed_members");

    const fl::RunResult result = fl::run_federated(federation, *algorithm, run);

    const std::uint64_t spilled = counter_value("fl.spill.stored") - spilled_before;
    const std::uint64_t degraded = counter_value("fl.fusion.degraded_rounds") - degraded_before;
    const std::uint64_t shed = counter_value("fl.fusion.shed_members") - shed_before;
    total_spilled += spilled;
    total_degraded += degraded;
    total_shed += shed;

    const std::size_t peak = obs::process_peak_rss_bytes();
    const std::size_t current = obs::process_current_rss_bytes();
    if (baseline_peak == 0) baseline_peak = peak;
    final_peak = peak;

    const double mb = 1024.0 * 1024.0;
    table.row()
        .cell(static_cast<double>(population), 0)
        .cell(static_cast<double>(population_scale), 0)
        .cell(static_cast<double>(peak) / mb, 1)
        .cell(static_cast<double>(current) / mb, 1)
        .cell(result.final_accuracy, 4)
        .cell(static_cast<double>(spilled), 0)
        .cell(static_cast<double>(degraded), 0)
        .cell(static_cast<double>(shed), 0);

    report.add("overload/final_accuracy_pop_" + std::to_string(population),
               result.final_accuracy, "accuracy");
    report.add("overload/peak_rss_mb_pop_" + std::to_string(population),
               static_cast<double>(peak) / mb, "MB");
  }

  const double ratio = baseline_peak > 0
                           ? static_cast<double>(final_peak) /
                                 static_cast<double>(baseline_peak)
                           : std::numeric_limits<double>::infinity();
  report.add("overload/peak_rss_ratio", ratio, "ratio");
  report.add("overload/spill_stored", static_cast<double>(total_spilled), "count");
  report.add("overload/degraded_rounds", static_cast<double>(total_degraded), "count");
  report.add("overload/shed_members", static_cast<double>(total_shed), "count");

  emit("Overload: peak RSS vs registered population (cohort fixed at " +
           std::to_string(clients) + ")",
       table, csv_dir.empty() ? "" : csv_dir + "/overload.csv");
  if (!csv_dir.empty()) report.write(csv_dir);

  std::printf("peak RSS ratio (10^5 vs 10^3 registrations): %.3f (tolerance %.2f)\n",
              ratio, rss_tolerance);

  bool ok = true;
  if (ratio > rss_tolerance) {
    std::fprintf(stderr,
                 "FAIL: peak RSS grew %.3fx across a 100x registration increase "
                 "(tolerance %.2fx) — server memory is scaling with the registered "
                 "population\n",
                 ratio, rss_tolerance);
    ok = false;
  }
  if (total_spilled == 0) {
    std::fprintf(stderr, "FAIL: no departed-client state was spilled — the overload "
                         "policy never engaged\n");
    ok = false;
  }
  if (total_degraded == 0) {
    std::fprintf(stderr, "FAIL: no round was fusion-degraded — the member cap never "
                         "engaged\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
