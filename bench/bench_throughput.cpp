// Heavy-traffic bench for the socket transport: sustained UPLOAD throughput
// and upload -> ACK round-trip latency against the epoll server, swept over
// the number of concurrent client connections.
//
// Each client thread opens one ClientSession, registers via HELLO, and then
// drives a serial upload loop: send one UPLOAD frame carrying a model-sized
// payload, block on its ACK, record the round trip.  N threads run the loop
// concurrently against a single EpollServer (its one loop thread is exactly
// the fed_server deployment shape), so the sweep shows how aggregate
// uploads/sec and tail latency move as connections pile up.  A drain thread
// sweeps the server's parked-upload map so sustained traffic cannot grow
// server memory without bound.
//
// Metrics land in results/BENCH_throughput.json for the perf-regression gate.
// The JSON carries *time-shaped* numbers only (ns per upload, p50/p99 RTT):
// the gate normalizes current/baseline ratios by their median and flags
// increases, so a rate metric (bigger = better) would invert its semantics
// and trip falsely on a faster machine.  Uploads/sec is printed in the table
// and written to the CSV instead.

#include "bench_common.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "net/server.hpp"
#include "net/session.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::size_t> parse_count_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string item =
        text.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoul(item)));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "bench_throughput: empty --clients list '%s'\n", text.c_str());
    std::exit(2);
  }
  return out;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double index = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(index);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = index - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

struct SweepResult {
  double elapsed_seconds = 0.0;  ///< measured phase, barrier to last ACK
  std::size_t uploads = 0;       ///< measured uploads across all clients
  std::vector<double> rtt_ns;    ///< pooled upload -> ACK round trips
};

/// One sweep point: `clients` concurrent sessions, each sending
/// `warmup + uploads` payloads and timing the measured ones.
SweepResult run_sweep(const net::Endpoint& endpoint, std::size_t clients,
                      std::size_t warmup, std::size_t uploads,
                      std::size_t payload_bytes) {
  net::EpollServer server(endpoint);
  server.start();

  // The parked-upload map would otherwise hold every frame of the run;
  // sweeping it is what the elastic round loop does with late arrivals.
  std::atomic<bool> draining{true};
  std::thread drainer([&] {
    while (draining.load()) {
      (void)server.take_stale_uploads(0xFFFFFFFFu);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 1315423911u >> 16);
  }

  // Two-phase start: every thread finishes HELLO + warmup, then the main
  // thread opens the gate and timestamps the measured phase.
  std::atomic<std::size_t> warmed{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> rtts(clients);
  std::vector<double> done_at(clients, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  for (std::size_t id = 0; id < clients; ++id) {
    threads.emplace_back([&, id] {
      net::ClientSession session(endpoint, net::Deadline::after(30.0), net::FrameLimits{},
                                 /*collect_acks=*/true);
      net::HelloRequest hello;
      hello.mode = 1;
      hello.algorithm = "bench";
      hello.owned_clients = {static_cast<std::uint32_t>(id)};
      session.hello(hello, net::Deadline::after(30.0));

      net::Frame frame;
      frame.type = net::FrameType::kUpload;
      frame.client = static_cast<std::uint32_t>(id);
      frame.name = "payload";
      frame.body = payload;

      auto round_trip = [&](std::uint32_t round) {
        frame.round = round;
        const net::Deadline deadline = net::Deadline::after(60.0);
        const double sent = now_seconds();
        session.send(frame, deadline);
        if (!session.await_ack(round, frame.client, frame.name, deadline)) {
          throw net::IoTimeout("bench_throughput: ACK never arrived");
        }
        return (now_seconds() - sent) * 1e9;
      };

      std::uint32_t round = 0;
      for (std::size_t i = 0; i < warmup; ++i) (void)round_trip(round++);
      warmed.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      rtts[id].reserve(uploads);
      for (std::size_t i = 0; i < uploads; ++i) rtts[id].push_back(round_trip(round++));
      done_at[id] = now_seconds();
      session.close();
    });
  }

  while (warmed.load() < clients) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double started = now_seconds();
  go.store(true);
  for (std::thread& thread : threads) thread.join();
  draining.store(false);
  drainer.join();
  server.stop();

  SweepResult result;
  result.elapsed_seconds = *std::max_element(done_at.begin(), done_at.end()) - started;
  for (std::vector<double>& samples : rtts) {
    result.uploads += samples.size();
    result.rtt_ns.insert(result.rtt_ns.end(), samples.begin(), samples.end());
  }
  std::sort(result.rtt_ns.begin(), result.rtt_ns.end());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string clients_list = "1,2,4,8";
  std::string endpoint_uri;
  std::size_t uploads = 400;
  std::size_t warmup = 40;
  std::size_t payload_bytes = 65536;
  std::string csv_dir = "results";

  utils::Cli cli("bench_throughput",
                 "socket-transport upload throughput and RTT vs client count");
  cli.flag("clients", &clients_list, "comma-separated client counts to sweep");
  cli.flag("uploads", &uploads, "measured uploads per client");
  cli.flag("warmup", &warmup, "untimed warmup uploads per client");
  cli.flag("payload-bytes", &payload_bytes, "UPLOAD body size in bytes");
  cli.flag("endpoint", &endpoint_uri,
           "tcp://host:port or unix:///path ('' = fresh unix socket in /tmp)");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  utils::Table table({"Clients", "Uploads/s", "MiB/s", "p50 RTT", "p99 RTT", "max RTT"});
  BenchReport report("throughput");

  for (const std::size_t clients : parse_count_list(clients_list)) {
    const std::string uri =
        endpoint_uri.empty()
            ? "unix:///tmp/fedkemf_bench_" + std::to_string(::getpid()) + "_" +
                  std::to_string(clients) + ".sock"
            : endpoint_uri;
    const SweepResult sweep = run_sweep(net::Endpoint::parse(uri), clients, warmup,
                                        uploads, payload_bytes);

    std::vector<double> sorted = sweep.rtt_ns;
    const double rate = static_cast<double>(sweep.uploads) / sweep.elapsed_seconds;
    const double mib_per_sec =
        rate * static_cast<double>(payload_bytes) / (1024.0 * 1024.0);
    const double p50 = percentile(sorted, 0.50);
    const double p99 = percentile(sorted, 0.99);
    const double worst = sorted.empty() ? 0.0 : sorted.back();
    const double ns_per_upload = 1e9 / rate;

    char rate_text[32], mib_text[32], p50_text[32], p99_text[32], max_text[32];
    std::snprintf(rate_text, sizeof(rate_text), "%.0f", rate);
    std::snprintf(mib_text, sizeof(mib_text), "%.1f", mib_per_sec);
    std::snprintf(p50_text, sizeof(p50_text), "%.1f us", p50 / 1e3);
    std::snprintf(p99_text, sizeof(p99_text), "%.1f us", p99 / 1e3);
    std::snprintf(max_text, sizeof(max_text), "%.1f us", worst / 1e3);
    table.row()
        .cell(std::to_string(clients))
        .cell(rate_text)
        .cell(mib_text)
        .cell(p50_text)
        .cell(p99_text)
        .cell(max_text);

    const std::string prefix = "net_upload/" + std::to_string(clients) + "clients/";
    report.add(prefix + "cost", ns_per_upload, "ns");
    report.add(prefix + "p50_rtt", p50, "ns");
    report.add(prefix + "p99_rtt", p99, "ns");
  }

  emit("Socket upload throughput vs concurrent clients (" +
           std::to_string(payload_bytes) + "-byte payloads)",
       table, csv_dir.empty() ? "" : csv_dir + "/throughput.csv");
  report.write(csv_dir.empty() ? "results" : csv_dir);
  return 0;
}
