// Ensemble-strategy ablation (paper §"Ensemble Knowledge"): max logits vs
// average logits vs majority vote, plus the weight-average fusion mode the
// paper mentions as the traditional alternative.  The paper adopts max
// logits "since the max logits get the best results in practice"; this bench
// regenerates that comparison on the synthetic substrate.

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 12;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_ablation_ensemble",
                 "Ablates FedKEMF's ensemble strategy: max/avg/vote/weight-average");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);

  struct Variant {
    std::string label;
    fl::EnsembleStrategy strategy;
    bool weight_average;
  };
  const std::vector<Variant> variants = {
      {"max logits (paper default)", fl::EnsembleStrategy::kMaxLogits, false},
      {"average logits", fl::EnsembleStrategy::kAvgLogits, false},
      {"majority vote", fl::EnsembleStrategy::kMajorityVote, false},
      {"weight average (no distillation)", fl::EnsembleStrategy::kMaxLogits, true},
  };

  utils::Table table({"Fusion", "Final Acc.", "Best Acc.", "Converge Acc.",
                      "Converge Round"});
  for (const Variant& variant : variants) {
    fl::FederationOptions fed_options;
    fed_options.data = data;
    fed_options.train_samples = scale.train_samples;
    fed_options.test_samples = scale.test_samples;
    fed_options.server_pool_samples = scale.server_pool;
    fed_options.num_clients = clients;
    fed_options.dirichlet_alpha = alpha;
    fed_options.seed = seed;
    fl::Federation federation(fed_options);

    fl::FedKemfOptions options = default_kemf(spec);
    options.ensemble = variant.strategy;
    options.fuse_by_weight_average = variant.weight_average;
    fl::FedKemf algorithm({spec}, local, options);

    fl::RunOptions run;
    run.rounds = scale.rounds;
    run.sample_ratio = sample_ratio;
    run.eval_every = 2;
    const fl::RunResult result = fl::run_federated(federation, algorithm, run);

    table.row()
        .cell(variant.label)
        .cell(utils::format_percent(result.final_accuracy))
        .cell(utils::format_percent(result.best_accuracy))
        .cell(utils::format_percent(result.convergence_accuracy()))
        .cell(static_cast<std::int64_t>(result.convergence_round()));
  }

  emit("Ablation: FedKEMF server fusion strategies", table,
       csv_dir.empty() ? "" : csv_dir + "/ablation_ensemble.csv");
  return 0;
}
