// Table 1 reproduction: communication cost to reach a target accuracy.
//
// Columns mirror the paper: Method, Model, Target Accuracy, Clients,
// Communication Rounds, Round/Client, Total, ΔCost, Speed Up.  Rounds are
// measured from scaled training runs (stop-at-target); the Round/Client and
// Total byte columns use the FULL-WIDTH per-round payloads measured by
// serializing real full-width models, so the cost factors live in the
// paper's regime (ResNet-20 ≈ 2.1 MB/round/client, VGG-11 ≈ 70 MB, FedKEMF
// always the knowledge network).  '*' marks runs that did not reach the
// target within the round budget (cost reported at the budget, as in the
// paper's 400-round rows).

#include <cmath>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::string clients_list = "10";
  double sample_ratio = 0.5;
  double alpha = 0.1;
  double target = 0.45;
  std::size_t max_rounds = 0;  // 0 = 2x scale.rounds
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_table1_comm_cost_target",
                 "Reproduces Table 1: communication cost to reach target accuracy");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients_list, "comma-separated client counts (paper: 30,50,100)");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio per round");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("target", &target, "target accuracy (fraction)");
  cli.flag("max-rounds", &max_rounds, "round budget (0 = 2x the scale default)");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  if (max_rounds == 0) max_rounds = 2 * scale.rounds;
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);

  std::vector<std::size_t> client_counts;
  for (std::size_t pos = 0; pos < clients_list.size();) {
    const std::size_t comma = clients_list.find(',', pos);
    client_counts.push_back(std::stoul(clients_list.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  const std::vector<std::string> algorithms = {"fedavg", "fednova", "fedprox", "scaffold",
                                               "fedkemf"};
  const std::vector<std::string> archs = {"resnet20", "resnet32", "vgg11"};

  utils::Table table({"Method", "Model", "Target", "Clients", "Rounds", "Round/Client",
                      "Total", "dCost", "Speed Up"});

  // FedAvg totals per (model, clients) group, for dCost / speed-up columns.
  std::map<std::string, double> fedavg_total;

  for (const std::string& name : algorithms) {
    for (std::size_t clients : client_counts) {
      for (const std::string& arch : archs) {
        // The paper evaluates VGG-11 only in the smallest-client group.
        if (arch == "vgg11" && clients != client_counts.front()) continue;

        fl::FederationOptions fed_options;
        fed_options.data = data;
        fed_options.train_samples = scale.train_samples;
        fed_options.test_samples = scale.test_samples;
        fed_options.server_pool_samples = scale.server_pool;
        fed_options.num_clients = clients;
        fed_options.dirichlet_alpha = alpha;
        fed_options.seed = seed;
        fl::Federation federation(fed_options);

        const models::ModelSpec client_spec = model_spec(arch, data, scale.width_multiplier);
        const models::ModelSpec knowledge_spec =
            model_spec("resnet20", data, scale.width_multiplier);
        auto algorithm = make_algorithm(name, client_spec, knowledge_spec, local);

        fl::RunOptions run;
        run.rounds = max_rounds;
        run.sample_ratio = sample_ratio;
        run.eval_every = 1;
        run.stop_at_accuracy = target;
        const fl::RunResult result = fl::run_federated(federation, *algorithm, run);

        const bool reached = result.best_accuracy >= target;
        const std::size_t rounds = reached ? result.rounds_completed : max_rounds;
        const std::size_t per_round_client = full_width_round_bytes(arch, name);
        const std::size_t sampled = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::lround(sample_ratio * clients)));
        const double total_bytes = static_cast<double>(rounds) *
                                   static_cast<double>(per_round_client) *
                                   static_cast<double>(sampled);

        const std::string group = arch + "/" + std::to_string(clients);
        if (name == "fedavg") fedavg_total[group] = total_bytes;
        const double baseline = fedavg_total.count(group) ? fedavg_total[group] : total_bytes;
        const double delta = total_bytes - baseline;

        table.row()
            .cell(algorithm_label(name))
            .cell(arch + std::string(reached ? "" : "*"))
            .cell(utils::format_percent(target, 0))
            .cell(static_cast<std::int64_t>(clients))
            .cell(static_cast<std::int64_t>(rounds))
            .cell(utils::format_bytes(static_cast<double>(per_round_client)))
            .cell(utils::format_bytes(total_bytes))
            .cell((delta >= 0 ? "+" : "-") + utils::format_bytes(std::abs(delta)))
            .cell(utils::format_speedup(baseline / total_bytes));
      }
    }
  }

  emit("Table 1: communication cost to reach target accuracy "
       "(byte columns at full model width; '*' = target not reached in budget)",
       table, csv_dir.empty() ? "" : csv_dir + "/table1_comm_cost_target.csv");
  return 0;
}
