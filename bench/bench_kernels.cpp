// Substrate microbenchmarks (google-benchmark): GEMM, im2col/col2im, layer
// forward/backward, losses, RNG, and model (de)serialization.  These are not
// paper assets; they certify the compute substrate the FL experiments run on
// and catch performance regressions.

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "core/rng.hpp"
#include "core/tensor_ops.hpp"
#include "models/zoo.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"

namespace {

using namespace fedkemf;

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(1);
  core::Tensor a = core::Tensor::normal(core::Shape::matrix(n, n), rng);
  core::Tensor b = core::Tensor::normal(core::Shape::matrix(n, n), rng);
  core::Tensor c = core::Tensor::zeros(core::Shape::matrix(n, n));
  for (auto _ : state) {
    core::gemm(core::Transpose::kNo, core::Transpose::kNo, n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(2);
  core::Tensor a = core::Tensor::normal(core::Shape::matrix(n, n), rng);
  core::Tensor b = core::Tensor::normal(core::Shape::matrix(n, n), rng);
  core::Tensor c = core::Tensor::zeros(core::Shape::matrix(n, n));
  for (auto _ : state) {
    core::gemm(core::Transpose::kYes, core::Transpose::kNo, n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposed)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  core::Conv2dGeometry geom{8, 16, size, size, 3, 1, 1};
  core::Rng rng(3);
  core::Tensor input = core::Tensor::normal(core::Shape::nchw(8, 16, size, size), rng);
  core::Tensor columns(
      core::Shape::matrix(16 * 9, 8 * geom.out_h() * geom.out_w()));
  for (auto _ : state) {
    core::im2col(input, geom, columns);
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dForwardBackward(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  core::Rng rng(4);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng, false);
  core::Tensor x = core::Tensor::normal(core::Shape::nchw(8, 16, size, size), rng);
  for (auto _ : state) {
    core::Tensor y = conv.forward(x);
    core::Tensor dx = conv.backward(y);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dForwardBackward)->Arg(8)->Arg(16);

void BM_BatchNormForward(benchmark::State& state) {
  core::Rng rng(5);
  nn::BatchNorm2d bn(32);
  core::Tensor x = core::Tensor::normal(core::Shape::nchw(16, 32, 16, 16), rng);
  for (auto _ : state) {
    core::Tensor y = bn.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  core::Rng rng(6);
  core::Tensor logits = core::Tensor::normal(core::Shape::matrix(128, 10), rng);
  std::vector<std::size_t> labels(128);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 10;
  nn::SoftmaxCrossEntropy ce;
  for (auto _ : state) {
    nn::LossResult r = ce.compute(logits, labels);
    benchmark::DoNotOptimize(r.grad.data());
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

void BM_DistillationKl(benchmark::State& state) {
  core::Rng rng(7);
  core::Tensor student = core::Tensor::normal(core::Shape::matrix(128, 10), rng);
  core::Tensor teacher = core::Tensor::normal(core::Shape::matrix(128, 10), rng);
  nn::DistillationKl kd(2.0f);
  for (auto _ : state) {
    nn::LossResult r = kd.compute(student, teacher);
    benchmark::DoNotOptimize(r.grad.data());
  }
}
BENCHMARK(BM_DistillationKl);

void BM_RngNormal(benchmark::State& state) {
  core::Rng rng(8);
  for (auto _ : state) {
    double total = 0.0;
    for (int i = 0; i < 1024; ++i) total += rng.normal();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_RngNormal);

void BM_ModelSerializeRoundTrip(benchmark::State& state) {
  // The per-round marshalling cost of the knowledge network exchange.
  core::Rng rng(9);
  models::ModelSpec spec{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                         .image_size = 16, .width_multiplier = 0.25};
  auto src = models::build_model(spec, rng);
  auto dst = models::build_model(spec, rng);
  for (auto _ : state) {
    const auto payload = comm::serialize_model(*src);
    comm::deserialize_model(payload, *dst);
    benchmark::DoNotOptimize(payload.data());
  }
  core::Rng rng2(10);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(comm::model_wire_size(*src)));
}
BENCHMARK(BM_ModelSerializeRoundTrip);

void BM_ResNet20Forward(benchmark::State& state) {
  core::Rng rng(11);
  models::ModelSpec spec{.arch = "resnet20", .num_classes = 10, .in_channels = 3,
                         .image_size = 16, .width_multiplier = 0.25};
  auto model = models::build_model(spec, rng);
  model->set_training(false);
  core::Tensor x = core::Tensor::normal(core::Shape::nchw(32, 3, 16, 16), rng);
  for (auto _ : state) {
    core::Tensor y = model->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ResNet20Forward);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): unless the caller passes their own
// --benchmark_out, results also land in results/BENCH_kernels.json — the
// machine-readable record CI uploads and gates on (see
// tools/check_bench_regression.py).
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    out_flag = "--benchmark_out=results/BENCH_kernels.json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
