// Observability overhead budget (not a paper asset).
//
// The metrics registry and the trace spans are compiled into the hot paths
// permanently — the round loop, the channel, the thread pool — so their cost
// must be provably negligible.  This bench enforces two budgets and exits
// non-zero when either is blown:
//
//   1. a disabled TraceSpan (the default state) costs < 1 microsecond;
//   2. turning the full instrumentation on (trace recording + JSONL
//      telemetry) changes the end-to-end runtime of a federated run by less
//      than --max-overhead (default 3%), measured as the min over --runs
//      interleaved off/on pairs so machine noise cancels.
//
// Results land in results/BENCH_observability.json for the CI artifact trail.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

/// Mean cost in nanoseconds of constructing + destroying one disabled span.
double disabled_span_ns() {
  constexpr std::size_t kIterations = 2'000'000;
  obs::set_trace_enabled(false);
  utils::Stopwatch clock;
  for (std::size_t i = 0; i < kIterations; ++i) {
    obs::TraceSpan span("bench.disabled");
  }
  return clock.seconds() * 1e9 / static_cast<double>(kIterations);
}

double counter_add_ns() {
  constexpr std::size_t kIterations = 2'000'000;
  obs::Counter& counter = obs::MetricsRegistry::global().counter("bench.counter");
  utils::Stopwatch clock;
  for (std::size_t i = 0; i < kIterations; ++i) counter.add(1);
  return clock.seconds() * 1e9 / static_cast<double>(kIterations);
}

double histogram_observe_ns() {
  constexpr std::size_t kIterations = 1'000'000;
  obs::Histogram& histogram = obs::MetricsRegistry::global().histogram("bench.histogram");
  utils::Stopwatch clock;
  for (std::size_t i = 0; i < kIterations; ++i) {
    histogram.observe(static_cast<double>(i % 1000) * 1e-6);
  }
  return clock.seconds() * 1e9 / static_cast<double>(kIterations);
}

/// One end-to-end federated run; identical work on every call (fixed seed).
double run_once(bool instrumented, const std::string& telemetry_path) {
  obs::trace_reset();
  obs::set_trace_enabled(instrumented);

  fl::FederationOptions fed_options;
  fed_options.data = data::SyntheticSpec::cifar_like();
  fed_options.data.image_size = 10;
  fed_options.train_samples = 600;
  fed_options.test_samples = 128;
  fed_options.server_pool_samples = 64;
  fed_options.num_clients = 4;
  fed_options.seed = 7;
  fl::Federation federation(fed_options);

  const models::ModelSpec spec = model_spec("cnn2", fed_options.data, 0.5);
  fl::LocalTrainConfig local;
  local.epochs = 1;
  fl::FedAvg algorithm(spec, local);

  fl::RunOptions run;
  run.rounds = 3;
  run.sample_ratio = 1.0;
  run.eval_every = 1;
  if (instrumented) run.telemetry_path = telemetry_path;

  utils::Stopwatch clock;
  (void)fl::run_federated(federation, algorithm, run);
  const double seconds = clock.seconds();
  obs::set_trace_enabled(false);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 5;
  double max_overhead = 0.03;
  double max_disabled_span_ns = 1000.0;  // the "sub-microsecond" contract
  std::string results_dir = "results";
  utils::Cli cli("bench_observability",
                 "Asserts the observability layer's overhead budgets");
  cli.flag("runs", &runs, "off/on run pairs; the min of each side is compared");
  cli.flag("max-overhead", &max_overhead,
           "maximum tolerated fractional slowdown with instrumentation on");
  cli.flag("max-span-ns", &max_disabled_span_ns,
           "maximum tolerated cost of one disabled TraceSpan, nanoseconds");
  cli.flag("results-dir", &results_dir, "directory for BENCH json ('' = none)");
  cli.parse(argc, argv);

  const double span_ns = disabled_span_ns();
  const double counter_ns = counter_add_ns();
  const double histogram_ns = histogram_observe_ns();
  std::printf("disabled TraceSpan   %8.1f ns\n", span_ns);
  std::printf("Counter::add         %8.1f ns\n", counter_ns);
  std::printf("Histogram::observe   %8.1f ns\n", histogram_ns);

  const std::string telemetry_path = results_dir.empty()
                                         ? std::string("bench_observability.jsonl")
                                         : results_dir + "/bench_observability.jsonl";
  double best_off = 1e300;
  double best_on = 1e300;
  run_once(false, telemetry_path);  // warm-up: page in data + code, not timed
  for (int i = 0; i < runs; ++i) {
    best_off = std::min(best_off, run_once(false, telemetry_path));
    best_on = std::min(best_on, run_once(true, telemetry_path));
  }
  const double overhead = best_on / best_off - 1.0;
  std::printf("end-to-end run       %.3f s off, %.3f s on  ->  %+.2f%% overhead "
              "(min of %d runs)\n",
              best_off, best_on, 100.0 * overhead, runs);

  if (!results_dir.empty()) {
    BenchReport report("observability");
    report.add("disabled_span", span_ns, "ns");
    report.add("counter_add", counter_ns, "ns");
    report.add("histogram_observe", histogram_ns, "ns");
    report.add("run_off", best_off * 1e9, "ns");
    report.add("run_on", best_on * 1e9, "ns");
    report.write(results_dir);
  }

  bool ok = true;
  if (span_ns > max_disabled_span_ns) {
    std::fprintf(stderr, "FAIL: disabled TraceSpan costs %.1f ns (budget %.1f ns)\n",
                 span_ns, max_disabled_span_ns);
    ok = false;
  }
  if (overhead > max_overhead) {
    std::fprintf(stderr,
                 "FAIL: instrumentation overhead %.2f%% exceeds the %.2f%% budget\n",
                 100.0 * overhead, 100.0 * max_overhead);
    ok = false;
  }
  if (ok) std::printf("all observability budgets hold\n");
  return ok ? 0 : 1;
}
