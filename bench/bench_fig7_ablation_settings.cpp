// Figure 7 reproduction: FedKEMF stability across FL settings.
//
// The paper varies the federation scale (clients), participation (sample
// ratio), and heterogeneity noise (we use the Dirichlet concentration, the
// knob that controls label-skew heterogeneity) and shows FedKEMF's training
// stays stable.  We report, per setting, the final and best accuracy plus a
// stability score: the standard deviation of the accuracy over the last half
// of the evaluated rounds (lower = more stable training).

#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

double tail_stddev(const fl::RunResult& result) {
  const std::size_t n = result.history.size();
  if (n < 4) return 0.0;
  const std::size_t start = n / 2;
  double mean = 0.0;
  for (std::size_t i = start; i < n; ++i) mean += result.history[i].accuracy;
  mean /= static_cast<double>(n - start);
  double var = 0.0;
  for (std::size_t i = start; i < n; ++i) {
    const double d = result.history[i].accuracy - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(n - start));
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_fig7_ablation_settings",
                 "Reproduces Figure 7: FedKEMF stability across FL settings");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);

  struct Setting {
    std::size_t clients;
    double ratio;
    double alpha;
  };
  // Sweep one axis at a time around the paper's base setting.
  const std::vector<Setting> settings = {
      {8, 0.4, 0.1},  {12, 0.4, 0.1}, {16, 0.4, 0.1},   // scale axis
      {12, 0.7, 0.1}, {12, 1.0, 0.1},                   // participation axis
      {12, 0.4, 0.05}, {12, 0.4, 0.5},                  // heterogeneity axis
  };

  utils::Table table({"Clients", "Ratio", "Alpha", "Final Acc.", "Best Acc.",
                      "Tail StdDev"});
  for (const Setting& setting : settings) {
    fl::FederationOptions fed_options;
    fed_options.data = data;
    fed_options.train_samples = scale.train_samples;
    fed_options.test_samples = scale.test_samples;
    fed_options.server_pool_samples = scale.server_pool;
    fed_options.num_clients = setting.clients;
    fed_options.dirichlet_alpha = setting.alpha;
    fed_options.seed = seed;
    fl::Federation federation(fed_options);

    fl::FedKemf algorithm({spec}, local, default_kemf(spec));
    fl::RunOptions run;
    run.rounds = scale.rounds;
    run.sample_ratio = setting.ratio;
    run.eval_every = 2;
    const fl::RunResult result = fl::run_federated(federation, algorithm, run);

    table.row()
        .cell(static_cast<std::int64_t>(setting.clients))
        .cell(setting.ratio, 1)
        .cell(setting.alpha, 2)
        .cell(utils::format_percent(result.final_accuracy))
        .cell(utils::format_percent(result.best_accuracy))
        .cell(tail_stddev(result), 4);
  }

  emit("Figure 7: FedKEMF across FL settings (stable = low tail stddev)", table,
       csv_dir.empty() ? "" : csv_dir + "/fig7_ablation_settings.csv");
  return 0;
}
