// Recovery-latency bench for the hardened socket transport (PR 7 chaos
// layer): how fast a lost client is back in the round, and what fault
// injection costs a full elastic run.
//
// Part 1 — reconnect-to-first-ACK: repeatedly tear a ClientSession down and
// time the full recovery cycle (connect + HELLO + first UPLOAD + its ACK)
// against a live EpollServer.  This is the window during which a crashed
// worker contributes nothing to the round, so its p50/p99 bound how much a
// flapping client can stretch a round.
//
// Part 2 — elastic round wall-clock under faults: a real in-process
// federation (run_elastic_server + two run_elastic_client workers over a
// unix socket) swept over transport drop rates {0%, 5%, 20%}.  The metric is
// wall-clock ns per completed round, so the JSON shows directly what the
// retry/backoff/stale machinery charges for each fault regime.
//
// Metrics land in results/BENCH_recovery.json for the perf-regression gate.
// All JSON values are time-shaped (ns), matching the gate's
// bigger-is-a-regression convention.

#include "bench_common.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "net/server.hpp"
#include "net/service.hpp"
#include "net/session.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double index = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(index);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = index - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// One recovery cycle: fresh connection, HELLO, one UPLOAD, block on its
/// ACK.  Returns the elapsed nanoseconds — the time a restarted worker needs
/// before its first contribution lands.
double recovery_cycle(const net::Endpoint& endpoint, std::uint32_t id,
                      const std::vector<std::uint8_t>& payload) {
  const double started = now_seconds();
  net::ClientSession session(endpoint, net::Deadline::after(30.0), net::FrameLimits{},
                             /*collect_acks=*/true);
  net::HelloRequest hello;
  hello.mode = 1;
  hello.algorithm = "bench";
  hello.owned_clients = {id};
  hello.rejoin = id > 0 ? 1 : 0;
  session.hello(hello, net::Deadline::after(30.0));

  net::Frame frame;
  frame.type = net::FrameType::kUpload;
  frame.round = 0;
  frame.client = id;
  frame.name = "recovery";
  frame.body = payload;
  const net::Deadline deadline = net::Deadline::after(30.0);
  session.send(frame, deadline);
  if (!session.await_ack(frame.round, frame.client, frame.name, deadline)) {
    throw net::IoTimeout("bench_recovery: ACK never arrived");
  }
  const double elapsed = (now_seconds() - started) * 1e9;
  session.close();
  return elapsed;
}

/// Part 1 sweep: `cycles` measured reconnect cycles (plus warmup) against a
/// single server.  Each cycle uses a fresh client id so a not-yet-reaped
/// predecessor connection can never shadow the registration.
std::vector<double> run_reconnect_sweep(std::size_t warmup, std::size_t cycles,
                                        std::size_t payload_bytes) {
  const net::Endpoint endpoint = net::Endpoint::parse(
      "unix:///tmp/fedkemf_bench_recovery_" + std::to_string(::getpid()) + ".sock");
  net::EpollServer server(endpoint);
  server.start();

  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 8);
  }

  std::vector<double> samples;
  samples.reserve(cycles);
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < warmup; ++i) (void)recovery_cycle(endpoint, id++, payload);
  for (std::size_t i = 0; i < cycles; ++i) {
    samples.push_back(recovery_cycle(endpoint, id++, payload));
  }
  (void)server.take_stale_uploads(0xFFFFFFFFu);
  server.stop();
  std::sort(samples.begin(), samples.end());
  return samples;
}

struct ElasticRun {
  double wall_seconds = 0.0;
  std::size_t rounds = 0;
  double accuracy = 0.0;
};

/// Part 2: one full elastic federation (server + two workers, in-process
/// threads over a unix socket) at the given transport drop rate.
ElasticRun run_elastic_under_faults(const net::FedSpec& spec, double drop_rate) {
  const std::string uri = "unix:///tmp/fedkemf_bench_recovery_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(static_cast<int>(drop_rate * 100)) + ".sock";

  net::ElasticServerOptions server_options;
  server_options.endpoint = net::Endpoint::parse(uri);
  server_options.min_clients = spec.federation.num_clients;
  server_options.join_wait_seconds = 30.0;
  server_options.upload_timeout_seconds = 20.0;
  server_options.fault.drop_rate = drop_rate;
  server_options.fault.seed = 11;

  std::vector<std::thread> workers;
  workers.reserve(spec.federation.num_clients);
  for (std::size_t id = 0; id < spec.federation.num_clients; ++id) {
    workers.emplace_back([&, id] {
      net::ElasticClientOptions options;
      options.endpoint = net::Endpoint::parse(uri);
      options.client_id = id;
      options.connect_timeout_seconds = 30.0;
      (void)net::run_elastic_client(spec, options);
    });
  }

  const double started = now_seconds();
  const fl::RunResult result = net::run_elastic_server(spec, server_options);
  ElasticRun run;
  run.wall_seconds = now_seconds() - started;
  run.rounds = result.rounds_completed;
  run.accuracy = result.final_accuracy;
  for (std::thread& worker : workers) worker.join();
  return run;
}

/// The tiny elastic configuration the sweep federates: small enough that the
/// bench is transport-bound rather than SGD-bound.
net::FedSpec recovery_spec(std::size_t rounds) {
  net::FedSpec spec;
  spec.algorithm = "fedavg";
  spec.federation.data = data::SyntheticSpec::cifar_like();
  spec.federation.data.image_size = 8;
  spec.federation.train_samples = 96;
  spec.federation.test_samples = 48;
  spec.federation.num_clients = 2;
  spec.federation.seed = 7;
  spec.client_model = {.arch = "cnn2",
                       .num_classes = spec.federation.data.num_classes,
                       .in_channels = spec.federation.data.channels,
                       .image_size = 8,
                       .width_multiplier = 0.25};
  spec.knowledge_model = spec.client_model;
  spec.local.epochs = 1;
  spec.local.batch_size = 16;
  spec.rounds = rounds;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 50;
  std::size_t warmup = 5;
  std::size_t payload_bytes = 4096;
  std::size_t rounds = 3;
  std::string csv_dir = "results";

  utils::Cli cli("bench_recovery",
                 "reconnect-to-first-ACK latency and elastic round cost under faults");
  cli.flag("cycles", &cycles, "measured reconnect cycles");
  cli.flag("warmup", &warmup, "untimed warmup cycles");
  cli.flag("payload-bytes", &payload_bytes, "UPLOAD body size per cycle");
  cli.flag("rounds", &rounds, "federated rounds per elastic sweep point");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  BenchReport report("recovery");

  // ---- Part 1: reconnect-to-first-ACK ----
  std::vector<double> sorted = run_reconnect_sweep(warmup, cycles, payload_bytes);
  const double p50 = percentile(sorted, 0.50);
  const double p99 = percentile(sorted, 0.99);
  const double worst = sorted.empty() ? 0.0 : sorted.back();

  utils::Table reconnect_table({"Cycles", "p50", "p99", "max"});
  char p50_text[32], p99_text[32], max_text[32];
  std::snprintf(p50_text, sizeof(p50_text), "%.1f us", p50 / 1e3);
  std::snprintf(p99_text, sizeof(p99_text), "%.1f us", p99 / 1e3);
  std::snprintf(max_text, sizeof(max_text), "%.1f us", worst / 1e3);
  reconnect_table.row()
      .cell(std::to_string(cycles))
      .cell(p50_text)
      .cell(p99_text)
      .cell(max_text);
  emit("Reconnect-to-first-ACK latency (" + std::to_string(payload_bytes) +
           "-byte first upload)",
       reconnect_table, csv_dir.empty() ? "" : csv_dir + "/recovery_reconnect.csv");
  report.add("recovery/reconnect_ack/p50", p50, "ns");
  report.add("recovery/reconnect_ack/p99", p99, "ns");

  // ---- Part 2: elastic round wall-clock vs injected drop rate ----
  const net::FedSpec spec = recovery_spec(rounds);
  utils::Table elastic_table({"Drop rate", "Rounds", "Wall s", "s/round", "Accuracy"});
  const std::vector<std::pair<double, std::string>> sweep = {
      {0.00, "fault0"}, {0.05, "fault5"}, {0.20, "fault20"}};
  for (const auto& [rate, label] : sweep) {
    const ElasticRun run = run_elastic_under_faults(spec, rate);
    const double per_round =
        run.rounds == 0 ? 0.0 : run.wall_seconds / static_cast<double>(run.rounds);
    char rate_text[32], wall_text[32], round_text[32], acc_text[32];
    std::snprintf(rate_text, sizeof(rate_text), "%.0f%%", rate * 100.0);
    std::snprintf(wall_text, sizeof(wall_text), "%.2f", run.wall_seconds);
    std::snprintf(round_text, sizeof(round_text), "%.2f", per_round);
    std::snprintf(acc_text, sizeof(acc_text), "%.4f", run.accuracy);
    elastic_table.row()
        .cell(rate_text)
        .cell(std::to_string(run.rounds))
        .cell(wall_text)
        .cell(round_text)
        .cell(acc_text);
    report.add("recovery/round_wall/" + label, per_round * 1e9, "ns");
  }
  emit("Elastic round wall-clock vs injected transport drop rate (" +
           std::to_string(rounds) + " rounds, 2 workers)",
       elastic_table, csv_dir.empty() ? "" : csv_dir + "/recovery_elastic.csv");

  report.write(csv_dir.empty() ? "results" : csv_dir);
  return 0;
}
