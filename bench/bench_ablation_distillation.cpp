// Contribution isolation: FedAvg vs FedDF vs FedMD vs FedKEMF.
//
// FedKEMF = (a) ensemble-distillation fusion (inherited from FedDF) +
// (b) tiny-knowledge-network exchange via deep mutual learning.  Running the
// three side by side on one federation separates the two effects:
//   accuracy(FedDF) - accuracy(FedAvg)   -> value of distillation fusion;
//   accuracy(FedKEMF) vs FedDF           -> cost/benefit of extracting into
//                                           the tiny network;
//   bytes(FedKEMF) vs both               -> the communication win;
//   FedMD (logit consensus, cited comparator) bounds the other extreme:
//   near-zero traffic but the least information moved per round.

#include "bench_common.hpp"
#include "fl/feddf.hpp"
#include "fl/fedmd.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 0.4;
  double alpha = 0.1;
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_ablation_distillation",
                 "Isolates FedKEMF's two mechanisms via FedAvg / FedDF / FedKEMF");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);

  utils::Table table({"Algorithm", "Fusion", "Wire payload", "Final Acc.", "Best Acc.",
                      "Measured traffic"});

  auto run_one = [&](const std::string& label, const std::string& fusion,
                     const std::string& wire, std::unique_ptr<fl::Algorithm> algorithm) {
    fl::FederationOptions fed_options;
    fed_options.data = data;
    fed_options.train_samples = scale.train_samples;
    fed_options.test_samples = scale.test_samples;
    fed_options.server_pool_samples = scale.server_pool;
    fed_options.num_clients = clients;
    fed_options.dirichlet_alpha = alpha;
    fed_options.seed = seed;
    fl::Federation federation(fed_options);

    fl::RunOptions run;
    run.rounds = scale.rounds;
    run.sample_ratio = sample_ratio;
    run.eval_every = 2;
    const fl::RunResult result = fl::run_federated(federation, *algorithm, run);
    table.row()
        .cell(label)
        .cell(fusion)
        .cell(wire)
        .cell(utils::format_percent(result.final_accuracy))
        .cell(utils::format_percent(result.best_accuracy))
        .cell(utils::format_bytes(static_cast<double>(federation.meter().total_bytes())));
  };

  run_one("FedAvg", "weight average", "full model",
          std::make_unique<fl::FedAvg>(spec, local));
  {
    fl::FedDfOptions options;
    run_one("FedDF", "ensemble distillation", "full model",
            std::make_unique<fl::FedDf>(spec, local, options));
  }
  {
    fl::FedMdOptions options;
    options.server_student = spec;
    options.public_batch = 64;
    run_one("FedMD", "logit consensus", "public-batch logits",
            std::make_unique<fl::FedMd>(std::vector<models::ModelSpec>{spec}, local,
                                        options));
  }
  run_one("FedKEMF", "ensemble distillation", "knowledge net",
          std::make_unique<fl::FedKemf>(std::vector<models::ModelSpec>{spec}, local,
                                        default_kemf(spec)));

  emit("Contribution isolation: fusion mechanism vs wire payload", table,
       csv_dir.empty() ? "" : csv_dir + "/ablation_distillation.csv");
  return 0;
}
