#pragma once

// Shared scaffolding for the paper-reproduction bench harnesses.
//
// Every bench binary reproduces one table or figure of the paper.  Because
// the paper's testbed (GPU cluster, full-width models, 200 rounds) does not
// fit a single CPU core, each bench runs a *scaled* configuration by default
// (smaller synthetic images, width-multiplied models, fewer rounds) and
// prints the same rows/series the paper reports.  The `--scale full` flag
// switches to paper-scale parameters for users with the compute budget.
// Byte columns always reflect the *full-width* models: the per-round payload
// is measured by serializing a genuinely full-width instance, so the
// communication factors match the paper's regime even in scaled runs.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedkemf.hpp"
#include "fl/fednova.hpp"
#include "fl/fedprox.hpp"
#include "fl/runner.hpp"
#include "fl/scaffold.hpp"
#include "models/zoo.hpp"
#include "obs/json.hpp"
#include "utils/cli.hpp"
#include "utils/stopwatch.hpp"
#include "utils/table.hpp"

namespace fedkemf::bench {

/// Scaled-vs-paper-scale switch shared by all benches.
struct BenchScale {
  std::string name = "quick";      ///< quick | standard | full
  std::size_t image_size = 12;
  double width_multiplier = 0.25;
  std::size_t train_samples = 1000;
  std::size_t test_samples = 320;
  std::size_t server_pool = 256;
  std::size_t rounds = 24;
  std::size_t local_epochs = 2;

  static BenchScale named(const std::string& name);
};

inline BenchScale BenchScale::named(const std::string& name) {
  BenchScale scale;
  scale.name = name;
  if (name == "quick") {
    return scale;  // defaults above
  }
  if (name == "standard") {
    // The configuration the key claims were validated on (see
    // EXPERIMENTS.md): ~5x the quick compute.
    scale.image_size = 16;
    scale.width_multiplier = 0.25;
    scale.train_samples = 1600;
    scale.test_samples = 400;
    scale.server_pool = 512;
    scale.rounds = 30;
    scale.local_epochs = 2;
    return scale;
  }
  if (name == "full") {
    // Paper scale: 32x32 data, full-width models, 200 rounds. Only feasible
    // with a serious multi-core budget.
    scale.image_size = 32;
    scale.width_multiplier = 1.0;
    scale.train_samples = 50000;
    scale.test_samples = 10000;
    scale.server_pool = 5000;
    scale.rounds = 200;
    scale.local_epochs = 2;
    return scale;
  }
  std::fprintf(stderr, "unknown --scale '%s' (quick|standard|full)\n", name.c_str());
  std::exit(2);
}

/// The synthetic stand-ins for the paper's datasets (see DESIGN.md for the
/// substitution rationale).  Difficulty is tuned so the scaled task has
/// headroom: centralized training tops out well below 100%, mirroring
/// CIFAR-10's regime where fusion quality matters.
inline data::SyntheticSpec synth_cifar(const BenchScale& scale) {
  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like();
  spec.image_size = scale.image_size;
  spec.noise_stddev = 1.4;
  spec.class_separation = 0.85;
  return spec;
}

inline data::SyntheticSpec synth_mnist(const BenchScale& scale) {
  data::SyntheticSpec spec = data::SyntheticSpec::mnist_like();
  spec.image_size = scale.image_size >= 28 ? 28 : scale.image_size;
  return spec;
}

inline models::ModelSpec model_spec(const std::string& arch, const data::SyntheticSpec& data,
                                    double width) {
  return models::ModelSpec{.arch = arch,
                           .num_classes = data.num_classes,
                           .in_channels = data.channels,
                           .image_size = data.image_size,
                           .width_multiplier = width};
}

/// Local SGD settings used across all benches (the paper follows the non-IID
/// benchmark conventions; exact values recorded in EXPERIMENTS.md).
inline fl::LocalTrainConfig default_local(const BenchScale& scale) {
  fl::LocalTrainConfig config;
  config.epochs = scale.local_epochs;
  config.batch_size = 32;
  config.learning_rate = 0.05;
  config.momentum = 0.9;
  config.weight_decay = 5e-4;
  return config;
}

/// FedKEMF server-side defaults used across benches.
inline fl::FedKemfOptions default_kemf(const models::ModelSpec& knowledge_spec) {
  fl::FedKemfOptions options;
  options.knowledge_spec = knowledge_spec;
  // The paper "adopt[s] the max logits as the ensemble strategy since the max
  // logits get the best results in practice"; on this synthetic substrate the
  // empirically best strategy is average logits (see bench_ablation_ensemble),
  // so the same pick-the-best-in-practice methodology selects kAvgLogits here.
  options.ensemble = fl::EnsembleStrategy::kAvgLogits;
  options.distill_temperature = 2.0f;
  options.distill_epochs = 2;
  options.server_learning_rate = 0.02;
  options.server_momentum = 0.0;
  return options;
}

/// Builds a baseline algorithm by name ("fedavg", "fedprox", "fednova",
/// "scaffold") or FedKEMF ("fedkemf").
inline std::unique_ptr<fl::Algorithm> make_algorithm(
    const std::string& name, const models::ModelSpec& client_spec,
    const models::ModelSpec& knowledge_spec, const fl::LocalTrainConfig& local) {
  if (name == "fedavg") return std::make_unique<fl::FedAvg>(client_spec, local);
  if (name == "fedprox") return std::make_unique<fl::FedProx>(client_spec, local, 0.01);
  if (name == "fednova") return std::make_unique<fl::FedNova>(client_spec, local);
  if (name == "scaffold") return std::make_unique<fl::Scaffold>(client_spec, local);
  if (name == "fedkemf") {
    return std::make_unique<fl::FedKemf>(std::vector<models::ModelSpec>{client_spec},
                                         local, default_kemf(knowledge_spec));
  }
  std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

/// Per-round-per-client payload bytes at FULL width (down + up), measured by
/// serializing a real full-width instance — this is the paper's
/// "Round/Client" column.
inline std::size_t full_width_round_bytes(const std::string& arch,
                                          const std::string& algorithm,
                                          const std::string& knowledge_arch = "resnet20") {
  auto wire = [](const std::string& a) {
    core::Rng rng(0);
    auto model = models::build_model(
        models::ModelSpec{.arch = a, .num_classes = 10, .in_channels = 3,
                          .image_size = 32, .width_multiplier = 1.0},
        rng);
    return comm::model_wire_size(*model);
  };
  auto param_bytes = [](const std::string& a) {
    return 4 * models::parameter_count(
                   models::ModelSpec{.arch = a, .num_classes = 10, .in_channels = 3,
                                     .image_size = 32, .width_multiplier = 1.0});
  };
  if (algorithm == "fedkemf") return 2 * wire(knowledge_arch);
  const std::size_t model_bytes = wire(arch);
  if (algorithm == "fednova") return 2 * model_bytes + param_bytes(arch) + 8;
  if (algorithm == "scaffold") return 2 * model_bytes + 2 * param_bytes(arch);
  return 2 * model_bytes;  // fedavg / fedprox
}

/// Pretty label used in tables.
inline std::string algorithm_label(const std::string& name) {
  if (name == "fedavg") return "FedAvg";
  if (name == "fedprox") return "FedProx";
  if (name == "fednova") return "FedNova";
  if (name == "scaffold") return "SCAFFOLD";
  if (name == "fedkemf") return "FedKEMF";
  return name;
}

/// Machine-readable bench results: collects named scalar metrics and writes
/// them as `BENCH_<name>.json` in google-benchmark's output shape (a
/// "context" header plus a "benchmarks" array), so one regression checker
/// (tools/check_bench_regression.py) handles both google-benchmark harnesses
/// and the standalone table benches.  CI uploads these files as artifacts and
/// gates merges on them.
class BenchReport {
 public:
  /// `name` is the suite label: the file lands at `<dir>/BENCH_<name>.json`.
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Records one metric.  `unit` is advisory ("ns", "bytes", "seconds"...).
  void add(const std::string& metric, double value, const std::string& unit) {
    entries_.push_back({metric, value, unit});
  }

  /// Writes `<dir>/BENCH_<name>.json`; returns false (and warns) on I/O
  /// failure.  Pass dir = "results" to match the CI artifact layout.
  bool write(const std::string& dir = "results") const {
    obs::JsonWriter json;
    json.begin_object();
    json.key("context");
    json.begin_object();
    json.member("executable", name_);
    json.member("library", std::string("fedkemf-bench-report"));
    json.end_object();
    json.key("benchmarks");
    json.begin_array();
    for (const Entry& entry : entries_) {
      json.begin_object();
      json.member("name", entry.metric);
      json.member("run_type", std::string("iteration"));
      json.member("real_time", entry.value);
      json.member("cpu_time", entry.value);
      json.member("time_unit", entry.unit);
      json.end_object();
    }
    json.end_array();
    json.end_object();

    std::error_code ec;
    if (!dir.empty()) std::filesystem::create_directories(dir, ec);
    const std::string path =
        (std::filesystem::path(dir) / ("BENCH_" + name_ + ".json")).string();
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = json.str();
    std::fwrite(body.data(), 1, body.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("(bench json written to %s)\n", path.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string metric;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Entry> entries_;
};

/// Emits a table with a caption, and optionally a CSV next to the binary.
inline void emit(const std::string& caption, const utils::Table& table,
                 const std::string& csv_path) {
  std::printf("\n== %s ==\n\n%s\n", caption.c_str(), table.to_markdown().c_str());
  if (!csv_path.empty()) {
    std::error_code ec;
    const auto parent = std::filesystem::path(csv_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    if (table.write_csv(csv_path)) std::printf("(csv written to %s)\n", csv_path.c_str());
  }
}

}  // namespace fedkemf::bench
