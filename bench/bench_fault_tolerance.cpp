// Fault-tolerance comparison (extension of the paper's edge-deployment
// theme): FedKEMF vs FedAvg under the network-realism simulator at 0% / 10%
// / 30% per-round client dropout, with payload faults and retries enabled.
// Reports accuracy, how much of each cohort actually aggregated, and the
// simulated wall-clock — the claim under test is that knowledge-fusion
// degrades gracefully when rounds see partial cohorts.

#include "bench_common.hpp"

#include "sim/simulator.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  std::size_t seed = 1;
  double drop_prob = 0.05;
  double corrupt_prob = 0.02;
  double adversary_fraction = 0.0;
  std::string csv_dir = "results";

  utils::Cli cli("bench_fault_tolerance",
                 "FedKEMF vs FedAvg under client dropout and payload faults");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("drop-prob", &drop_prob, "per-attempt payload drop probability");
  cli.flag("corrupt-prob", &corrupt_prob, "per-attempt payload corruption probability");
  cli.flag("adversary-fraction", &adversary_fraction,
           "fraction of clients that sign-flip their uploads");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);

  utils::Table table({"Algorithm", "Dropout", "Final Acc.", "Best Acc.",
                      "Completed/Sampled", "Stragglers", "Sim. time"});
  for (const std::string& algorithm_name : {std::string("fedavg"), std::string("fedkemf")}) {
    for (double dropout : {0.0, 0.1, 0.3}) {
      fl::FederationOptions fed_options;
      fed_options.data = data;
      fed_options.train_samples = scale.train_samples;
      fed_options.test_samples = scale.test_samples;
      fed_options.server_pool_samples = scale.server_pool;
      fed_options.num_clients = clients;
      fed_options.dirichlet_alpha = alpha;
      fed_options.seed = seed;
      fl::Federation federation(fed_options);

      auto algorithm = make_algorithm(algorithm_name, spec, spec, local);

      fl::RunOptions run;
      run.rounds = scale.rounds;
      run.sample_ratio = sample_ratio;
      run.eval_every = 2;
      run.sim = sim::SimOptions{};
      run.sim->network.dropout_prob = dropout;
      run.sim->faults.drop_prob = drop_prob;
      run.sim->faults.corrupt_prob = corrupt_prob;
      run.sim->adversary.poison_fraction = adversary_fraction;
      run.sim->adversary.poison_mode = sim::PoisonMode::kSignFlip;
      const fl::RunResult result = fl::run_federated(federation, *algorithm, run);

      std::size_t sampled_total = 0;
      std::size_t completed_total = 0;
      for (const fl::RoundRecord& record : result.history) {
        sampled_total += record.clients_sampled;
        completed_total += record.clients_completed;
      }
      char cohort[48];
      std::snprintf(cohort, sizeof(cohort), "%zu/%zu", completed_total, sampled_total);
      char sim_time[32];
      std::snprintf(sim_time, sizeof(sim_time), "%.1f s", result.sim_seconds);
      char dropout_label[16];
      std::snprintf(dropout_label, sizeof(dropout_label), "%.0f%%", 100.0 * dropout);

      table.row()
          .cell(algorithm_label(algorithm_name))
          .cell(dropout_label)
          .cell(utils::format_percent(result.final_accuracy))
          .cell(utils::format_percent(result.best_accuracy))
          .cell(cohort)
          .cell(std::to_string(result.total_stragglers))
          .cell(sim_time);
    }
  }

  emit("Fault tolerance: accuracy under client dropout and payload faults", table,
       csv_dir.empty() ? "" : csv_dir + "/fault_tolerance.csv");
  return 0;
}
