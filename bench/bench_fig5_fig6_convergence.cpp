// Figures 5 & 6 reproduction:
//   Fig. 5 — convergence accuracy per method/model (bar chart -> table rows);
//   Fig. 6 — communication rounds to reach a target accuracy (lower better).
//
// Both figures come from the same training runs, so one binary regenerates
// the two assets.

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  double target = 0.45;
  std::size_t seed = 1;
  std::string csv_dir = "results";

  fedkemf::utils::Cli cli("bench_fig5_fig6_convergence",
                          "Reproduces Figures 5 (convergence accuracy) and 6 "
                          "(rounds to target accuracy)");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio per round");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("target", &target, "target accuracy for Figure 6 (fraction)");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);

  const std::vector<std::string> archs = {"resnet20", "resnet32"};
  const std::vector<std::string> algorithms = {"fedavg", "fedprox", "fednova",
                                               "scaffold", "fedkemf"};

  utils::Table fig5({"Model", "Method", "Converge Acc.", "Best Acc.", "Converge Round"});
  utils::Table fig6({"Model", "Method", "Target", "Rounds to Target"});

  for (const std::string& arch : archs) {
    const models::ModelSpec client_spec = model_spec(arch, data, scale.width_multiplier);
    const models::ModelSpec knowledge_spec =
        model_spec("resnet20", data, scale.width_multiplier);
    for (const std::string& name : algorithms) {
      fl::FederationOptions fed_options;
      fed_options.data = data;
      fed_options.train_samples = scale.train_samples;
      fed_options.test_samples = scale.test_samples;
      fed_options.server_pool_samples = scale.server_pool;
      fed_options.num_clients = clients;
      fed_options.dirichlet_alpha = alpha;
      fed_options.seed = seed;
      fl::Federation federation(fed_options);

      auto algorithm = make_algorithm(name, client_spec, knowledge_spec, local);
      fl::RunOptions run;
      run.rounds = scale.rounds;
      run.sample_ratio = sample_ratio;
      run.eval_every = 2;
      const fl::RunResult result = fl::run_federated(federation, *algorithm, run);

      fig5.row()
          .cell(arch)
          .cell(algorithm_label(name))
          .cell(utils::format_percent(result.convergence_accuracy()))
          .cell(utils::format_percent(result.best_accuracy))
          .cell(static_cast<std::int64_t>(result.convergence_round()));

      const auto rounds = result.rounds_to_accuracy(target);
      fig6.row()
          .cell(arch)
          .cell(algorithm_label(name))
          .cell(utils::format_percent(target, 0))
          .cell(rounds ? std::to_string(*rounds) : ">" + std::to_string(scale.rounds) + "*");
    }
  }

  emit("Figure 5: convergence accuracy (higher is better)", fig5,
       csv_dir.empty() ? "" : csv_dir + "/fig5_convergence_accuracy.csv");
  emit("Figure 6: communication rounds to reach target accuracy (lower is better; "
       "'*' = target not reached within the round budget)",
       fig6, csv_dir.empty() ? "" : csv_dir + "/fig6_rounds_to_target.csv");
  return 0;
}
