// Figure 4 reproduction: top-1 average test accuracy vs. communication
// rounds for FedKEMF against FedAvg / FedProx / FedNova / SCAFFOLD, four
// panels: 2-layer CNN on synth-MNIST, and VGG-11 / ResNet-20 / ResNet-32 on
// synth-CIFAR (knowledge network: ResNet-20; for the CNN panel a second
// 2-layer CNN, following the paper).
//
// Output: one accuracy-vs-round series table per panel (+ CSV), the same
// curves the paper plots.

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

struct Panel {
  std::string title;
  std::string dataset;       // "cifar" | "mnist"
  std::string client_arch;
  std::string knowledge_arch;
};

void run_panel(const Panel& panel, const BenchScale& scale, std::size_t clients,
               double sample_ratio, double alpha, std::size_t eval_every,
               std::uint64_t seed, const std::string& csv_dir) {
  const data::SyntheticSpec data =
      panel.dataset == "mnist" ? synth_mnist(scale) : synth_cifar(scale);

  fl::FederationOptions fed_options;
  fed_options.data = data;
  fed_options.train_samples = scale.train_samples;
  fed_options.test_samples = scale.test_samples;
  fed_options.server_pool_samples = scale.server_pool;
  fed_options.num_clients = clients;
  fed_options.dirichlet_alpha = alpha;
  fed_options.seed = seed;

  const models::ModelSpec client_spec =
      model_spec(panel.client_arch, data, scale.width_multiplier);
  const models::ModelSpec knowledge_spec =
      model_spec(panel.knowledge_arch, data, scale.width_multiplier);
  const fl::LocalTrainConfig local = default_local(scale);

  fl::RunOptions run;
  run.rounds = scale.rounds;
  run.sample_ratio = sample_ratio;
  run.eval_every = eval_every;

  const std::vector<std::string> algorithms = {"fedavg", "fedprox", "fednova",
                                               "scaffold", "fedkemf"};
  std::vector<fl::RunResult> results;
  utils::Stopwatch clock;
  for (const std::string& name : algorithms) {
    fl::Federation federation(fed_options);
    auto algorithm = make_algorithm(name, client_spec, knowledge_spec, local);
    results.push_back(fl::run_federated(federation, *algorithm, run));
  }

  std::vector<std::string> header = {"Round"};
  for (const std::string& name : algorithms) header.push_back(algorithm_label(name));
  utils::Table table(header);
  const std::size_t points = results.front().history.size();
  for (std::size_t i = 0; i < points; ++i) {
    auto row = table.row();
    row.cell(static_cast<std::int64_t>(results.front().history[i].round + 1));
    for (const fl::RunResult& result : results) {
      row.cell(result.history[i].accuracy * 100.0, 1);
    }
  }
  emit("Figure 4 panel: " + panel.title + " (alpha=" + std::to_string(alpha) +
           ", clients=" + std::to_string(clients) + ", " +
           std::to_string(clock.seconds()) + "s)",
       table, csv_dir.empty() ? "" : csv_dir + "/fig4_" + panel.client_arch + ".csv");
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  std::size_t eval_every = 2;
  std::size_t seed = 1;
  std::string csv_dir = "results";
  std::string only_panel;

  fedkemf::utils::Cli cli("bench_fig4_learning_curves",
                          "Reproduces Figure 4: accuracy vs communication rounds");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients (paper: 30-100)");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio per round");
  cli.flag("alpha", &alpha, "Dirichlet concentration (paper: 0.1)");
  cli.flag("eval-every", &eval_every, "evaluate every N rounds");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.flag("panel", &only_panel, "run a single panel: cnn2|vgg11|resnet20|resnet32");
  cli.parse(argc, argv);

  const fedkemf::bench::BenchScale scale = fedkemf::bench::BenchScale::named(scale_name);
  const std::vector<Panel> panels = {
      {"2-layer CNN on synth-MNIST", "mnist", "cnn2", "cnn2"},
      {"ResNet-20 on synth-CIFAR", "cifar", "resnet20", "resnet20"},
      {"ResNet-32 on synth-CIFAR", "cifar", "resnet32", "resnet20"},
      {"VGG-11 on synth-CIFAR", "cifar", "vgg11", "resnet20"},
  };
  for (const Panel& panel : panels) {
    if (!only_panel.empty() && panel.client_arch != only_panel) continue;
    run_panel(panel, scale, clients, sample_ratio, alpha, eval_every, seed, csv_dir);
  }
  return 0;
}
