// Staleness-aware aggregation under a heavy-straggler profile: FedAvg and
// FedKEMF each run the same federation three ways —
//
//   discard   round deadline on, stragglers' uploads thrown away (the
//             historical policy);
//   stale     same deadline, but late uploads land in the StaleUpdateBuffer
//             and join the next round's fusion at the FedBuff-style discount
//             w = 1/(1+s)^alpha;
//   ideal     no deadline — every upload arrives in its own round (upper
//             bound on what recovering late work can buy).
//
// The claim under test (ISSUE 5 acceptance): with >= 30% of uploads late,
// the stale policy recovers at least half of the accuracy gap between
// discard and ideal, for both algorithms.  The binary exits non-zero when
// the claim fails, so it doubles as a CI gate; deterministic metrics land in
// results/BENCH_staleness.json for the regression checker.

#include "bench_common.hpp"

#include <cmath>

#include "sim/simulator.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

struct PolicyResult {
  double accuracy = 0.0;  ///< tail-mean evaluated accuracy (last quarter)
  double final_accuracy = 0.0;
  double late_fraction = 0.0;  ///< stragglers / sampled
  std::size_t stale_applied = 0;
};

/// Mean accuracy over the last quarter of rounds — steadier than the single
/// final round while still measuring converged behavior.  Assumes
/// eval_every = 1 so every record carries a fresh evaluation.
double tail_mean_accuracy(const fl::RunResult& result) {
  if (result.history.empty()) return 0.0;
  const std::size_t n = result.history.size();
  const std::size_t tail = std::max<std::size_t>(1, n / 4);
  double total = 0.0;
  for (std::size_t i = n - tail; i < n; ++i) total += result.history[i].accuracy;
  return total / static_cast<double>(tail);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  std::size_t seed = 1;
  double deadline = 0.35;
  double stale_alpha = 0.5;
  std::size_t min_staleness = 1;
  std::size_t max_staleness = 1;
  double min_late_fraction = 0.30;
  double min_recovered = 0.5;
  std::string csv_dir = "results";

  utils::Cli cli("bench_staleness",
                 "discard vs staleness-aware vs no-deadline aggregation");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("deadline", &deadline,
           "round deadline in simulated seconds for the straggler profile");
  cli.flag("stale-alpha", &stale_alpha, "staleness discount exponent");
  cli.flag("min-staleness", &min_staleness, "minimum rounds a late upload is delayed");
  cli.flag("max-staleness", &max_staleness, "maximum rounds a late upload is delayed");
  cli.flag("min-late-fraction", &min_late_fraction,
           "required fraction of late uploads for the profile to count as heavy");
  cli.flag("min-recovered", &min_recovered,
           "required fraction of the discard->ideal gap the stale policy recovers");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);

  utils::Table table({"Algorithm", "Policy", "Tail Acc.", "Final Acc.", "Late uploads",
                      "Stale applied"});
  BenchReport report("staleness");
  bool heavy_profile = true;
  bool recovered_ok = true;

  for (const std::string& algorithm_name :
       {std::string("fedavg"), std::string("fedkemf")}) {
    PolicyResult results[3];
    const char* policy_names[3] = {"discard", "stale", "ideal"};
    for (int policy = 0; policy < 3; ++policy) {
      fl::FederationOptions fed_options;
      fed_options.data = data;
      fed_options.train_samples = scale.train_samples;
      fed_options.test_samples = scale.test_samples;
      fed_options.server_pool_samples = scale.server_pool;
      fed_options.num_clients = clients;
      fed_options.dirichlet_alpha = alpha;
      fed_options.seed = seed;
      fl::Federation federation(fed_options);

      auto algorithm = make_algorithm(algorithm_name, spec, spec, local);

      fl::RunOptions run;
      run.rounds = scale.rounds;
      run.sample_ratio = sample_ratio;
      run.eval_every = 1;
      run.sim = sim::SimOptions{};
      const bool has_deadline = policy != 2;
      run.sim->deadline_seconds = has_deadline
                                      ? deadline
                                      : std::numeric_limits<double>::infinity();
      // At this deadline stragglers finish shortly after the cutoff, so the
      // default next-round delivery window ([1, 1]) is the physically
      // sensible lateness profile; widen it via the flags to study decay.
      run.sim->churn.min_staleness = min_staleness;
      run.sim->churn.max_staleness = max_staleness;
      if (policy == 1) run.staleness = fl::StalenessOptions{.alpha = stale_alpha};
      const fl::RunResult result = fl::run_federated(federation, *algorithm, run);

      std::size_t sampled_total = 0;
      for (const fl::RoundRecord& record : result.history) {
        sampled_total += record.clients_sampled;
      }
      PolicyResult& r = results[policy];
      r.accuracy = tail_mean_accuracy(result);
      r.final_accuracy = result.final_accuracy;
      r.late_fraction =
          sampled_total == 0
              ? 0.0
              : static_cast<double>(result.total_stragglers) /
                    static_cast<double>(sampled_total);
      r.stale_applied = result.total_stale_applied;

      char late_label[16];
      std::snprintf(late_label, sizeof(late_label), "%.0f%%", 100.0 * r.late_fraction);
      table.row()
          .cell(algorithm_label(algorithm_name))
          .cell(policy_names[policy])
          .cell(utils::format_percent(r.accuracy))
          .cell(utils::format_percent(r.final_accuracy))
          .cell(has_deadline ? late_label : "0%")
          .cell(std::to_string(r.stale_applied));
      report.add(algorithm_name + "/" + policy_names[policy] + "/tail_accuracy",
                 r.accuracy, "accuracy");
    }

    const PolicyResult& discard = results[0];
    const PolicyResult& stale = results[1];
    const PolicyResult& ideal = results[2];
    const double gap = ideal.accuracy - discard.accuracy;
    const double recovered = gap > 0.0 ? (stale.accuracy - discard.accuracy) / gap : 0.0;
    report.add(algorithm_name + "/recovered_fraction", recovered, "fraction");
    report.add(algorithm_name + "/late_fraction", discard.late_fraction, "fraction");
    std::printf("%s: late uploads %.0f%%, discard %.2f%% -> stale %.2f%% -> ideal "
                "%.2f%%, gap recovered %.0f%%\n",
                algorithm_label(algorithm_name).c_str(), 100.0 * discard.late_fraction,
                100.0 * discard.accuracy, 100.0 * stale.accuracy, 100.0 * ideal.accuracy,
                100.0 * recovered);
    if (discard.late_fraction < min_late_fraction) {
      std::fprintf(stderr,
                   "FAIL: %s straggler profile too light (%.0f%% late < %.0f%%); "
                   "tighten --deadline\n",
                   algorithm_name.c_str(), 100.0 * discard.late_fraction,
                   100.0 * min_late_fraction);
      heavy_profile = false;
    }
    if (gap <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: %s shows no discard->ideal gap (%.4f vs %.4f); the "
                   "deadline costs nothing here\n",
                   algorithm_name.c_str(), discard.accuracy, ideal.accuracy);
      recovered_ok = false;
    } else if (recovered < min_recovered) {
      std::fprintf(stderr,
                   "FAIL: %s recovered only %.0f%% of the gap (need >= %.0f%%)\n",
                   algorithm_name.c_str(), 100.0 * recovered, 100.0 * min_recovered);
      recovered_ok = false;
    }
  }

  emit("Staleness-aware aggregation vs discard vs no-deadline", table,
       csv_dir.empty() ? "" : csv_dir + "/staleness.csv");
  report.write(csv_dir.empty() ? "results" : csv_dir);
  if (!heavy_profile || !recovered_ok) return 1;
  std::printf("OK: staleness-aware aggregation recovered >= %.0f%% of the "
              "discard->ideal gap for both algorithms\n",
              100.0 * min_recovered);
  return 0;
}
