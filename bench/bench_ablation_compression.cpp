// Payload-quantization ablation (extension of the paper's communication
// theme): FedKEMF exchanging the knowledge network at fp32 / fp16 / int8.
// Reports measured traffic and accuracy so the accuracy-per-byte trade-off
// is explicit.

#include "bench_common.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 0.5;
  double alpha = 0.1;
  std::size_t seed = 1;
  std::string csv_dir = "results";

  utils::Cli cli("bench_ablation_compression",
                 "FedKEMF knowledge-net exchange under fp32/fp16/int8 codecs");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);

  utils::Table table({"Codec", "Final Acc.", "Best Acc.", "Measured traffic",
                      "Traffic vs fp32"});
  double fp32_bytes = 0.0;
  for (comm::Codec codec : {comm::Codec::kFp32, comm::Codec::kFp16, comm::Codec::kInt8}) {
    fl::FederationOptions fed_options;
    fed_options.data = data;
    fed_options.train_samples = scale.train_samples;
    fed_options.test_samples = scale.test_samples;
    fed_options.server_pool_samples = scale.server_pool;
    fed_options.num_clients = clients;
    fed_options.dirichlet_alpha = alpha;
    fed_options.seed = seed;
    fl::Federation federation(fed_options);

    fl::FedKemfOptions options = default_kemf(spec);
    options.payload_codec = codec;
    fl::FedKemf algorithm({spec}, local, options);

    fl::RunOptions run;
    run.rounds = scale.rounds;
    run.sample_ratio = sample_ratio;
    run.eval_every = 2;
    const fl::RunResult result = fl::run_federated(federation, algorithm, run);
    const double bytes = static_cast<double>(federation.meter().total_bytes());
    if (codec == comm::Codec::kFp32) fp32_bytes = bytes;

    table.row()
        .cell(comm::to_string(codec))
        .cell(utils::format_percent(result.final_accuracy))
        .cell(utils::format_percent(result.best_accuracy))
        .cell(utils::format_bytes(bytes))
        .cell(utils::format_speedup(fp32_bytes / bytes));
  }

  emit("Ablation: quantized knowledge-network exchange", table,
       csv_dir.empty() ? "" : csv_dir + "/ablation_compression.csv");
  return 0;
}
