// Byzantine-resilience sweep (robustness extension of the paper's fusion
// study): FedKEMF under 0% / 10% / 30% sign-flip poisoners, with the full
// defense stack (trimmed-mean fusion + upload sanitation + reputation
// screening + divergence watchdog) against the undefended max-logits
// configuration the paper reports.  The claim under test: defended
// knowledge fusion holds >= 90% of its clean-run accuracy at a 30% attacker
// fraction, while the undefended ensemble collapses.

#include "bench_common.hpp"

#include "sim/simulator.hpp"

namespace {

using namespace fedkemf;
using namespace fedkemf::bench;

}  // namespace

int main(int argc, char** argv) {
  std::string scale_name = "quick";
  std::size_t clients = 10;
  double sample_ratio = 1.0;
  // Moderate heterogeneity by default: at extreme non-IID (alpha ~ 0.1)
  // honest specialists are mutual outliers, so coordinate-wise trimming
  // discards real knowledge along with the poison and the defended arm pays
  // a steep clean-accuracy tax.  alpha = 1 isolates the Byzantine effect;
  // pass --alpha 0.1 to study the confounded regime.
  double alpha = 1.0;
  std::size_t seed = 1;
  std::string poison_mode = "sign_flip";
  std::string csv_dir = "results";

  utils::Cli cli("bench_byzantine",
                 "FedKEMF defended vs undefended under weight-poisoning clients");
  cli.flag("scale", &scale_name, "quick | standard | full");
  cli.flag("clients", &clients, "number of clients");
  cli.flag("sample-ratio", &sample_ratio, "client sample ratio");
  cli.flag("alpha", &alpha, "Dirichlet concentration");
  cli.flag("seed", &seed, "experiment seed");
  cli.flag("poison-mode", &poison_mode, "sign_flip | gaussian");
  cli.flag("csv-dir", &csv_dir, "directory for CSV dumps ('' = none)");
  cli.parse(argc, argv);

  const BenchScale scale = BenchScale::named(scale_name);
  const data::SyntheticSpec data = synth_cifar(scale);
  const fl::LocalTrainConfig local = default_local(scale);
  const models::ModelSpec spec = model_spec("resnet20", data, scale.width_multiplier);
  const models::ModelSpec knowledge = model_spec("mlp", data, scale.width_multiplier);

  utils::Table table({"Defense", "Attackers", "Final Acc.", "Best Acc.",
                      "Rejected", "Rollbacks"});
  for (const bool defended : {true, false}) {
    for (double fraction : {0.0, 0.1, 0.3}) {
      fl::FederationOptions fed_options;
      fed_options.data = data;
      fed_options.train_samples = scale.train_samples;
      fed_options.test_samples = scale.test_samples;
      fed_options.server_pool_samples = scale.server_pool;
      fed_options.num_clients = clients;
      fed_options.dirichlet_alpha = alpha;
      fed_options.seed = seed;
      fl::Federation federation(fed_options);

      fl::FedKemfOptions options = default_kemf(knowledge);
      if (defended) {
        options.ensemble = fl::EnsembleStrategy::kTrimmedMean;
        options.sanitize.enabled = true;
      } else {
        options.ensemble = fl::EnsembleStrategy::kMaxLogits;
      }
      fl::FedKemf algorithm({spec}, local, options);

      fl::RunOptions run;
      run.rounds = scale.rounds;
      run.sample_ratio = sample_ratio;
      run.eval_every = 2;
      if (fraction > 0.0) {
        run.sim = sim::SimOptions{};
        run.sim->adversary.poison_fraction = fraction;
        run.sim->adversary.poison_mode = poison_mode == "gaussian"
                                             ? sim::PoisonMode::kGaussianNoise
                                             : sim::PoisonMode::kSignFlip;
      }
      if (defended) run.watchdog = fl::WatchdogOptions{};
      const fl::RunResult result = fl::run_federated(federation, algorithm, run);

      char attackers[16];
      std::snprintf(attackers, sizeof(attackers), "%.0f%%", 100.0 * fraction);
      table.row()
          .cell(defended ? "trimmed+sanitize+watchdog" : "none (max logits)")
          .cell(attackers)
          .cell(utils::format_percent(result.final_accuracy))
          .cell(utils::format_percent(result.best_accuracy))
          .cell(result.total_rejected_updates)
          .cell(result.total_rolled_back);
    }
  }

  emit("Byzantine resilience: FedKEMF defended vs undefended under weight poisoning",
       table, csv_dir.empty() ? "" : csv_dir + "/byzantine.csv");
  return 0;
}
