file(REMOVE_RECURSE
  "CMakeFiles/centralized_upper_bound.dir/centralized_upper_bound.cpp.o"
  "CMakeFiles/centralized_upper_bound.dir/centralized_upper_bound.cpp.o.d"
  "centralized_upper_bound"
  "centralized_upper_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
