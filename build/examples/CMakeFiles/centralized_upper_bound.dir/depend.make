# Empty dependencies file for centralized_upper_bound.
# This may be replaced when dependencies are built.
