file(REMOVE_RECURSE
  "CMakeFiles/communication_budget.dir/communication_budget.cpp.o"
  "CMakeFiles/communication_budget.dir/communication_budget.cpp.o.d"
  "communication_budget"
  "communication_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/communication_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
