# Empty dependencies file for fairness_report.
# This may be replaced when dependencies are built.
