file(REMOVE_RECURSE
  "CMakeFiles/fairness_report.dir/fairness_report.cpp.o"
  "CMakeFiles/fairness_report.dir/fairness_report.cpp.o.d"
  "fairness_report"
  "fairness_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
