file(REMOVE_RECURSE
  "CMakeFiles/save_and_resume.dir/save_and_resume.cpp.o"
  "CMakeFiles/save_and_resume.dir/save_and_resume.cpp.o.d"
  "save_and_resume"
  "save_and_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_and_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
