# Empty dependencies file for save_and_resume.
# This may be replaced when dependencies are built.
