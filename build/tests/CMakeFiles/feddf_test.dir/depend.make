# Empty dependencies file for feddf_test.
# This may be replaced when dependencies are built.
