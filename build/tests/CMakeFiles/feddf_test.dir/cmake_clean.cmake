file(REMOVE_RECURSE
  "CMakeFiles/feddf_test.dir/feddf_test.cpp.o"
  "CMakeFiles/feddf_test.dir/feddf_test.cpp.o.d"
  "feddf_test"
  "feddf_test.pdb"
  "feddf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feddf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
