file(REMOVE_RECURSE
  "CMakeFiles/fl_core_test.dir/fl_core_test.cpp.o"
  "CMakeFiles/fl_core_test.dir/fl_core_test.cpp.o.d"
  "fl_core_test"
  "fl_core_test.pdb"
  "fl_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
