file(REMOVE_RECURSE
  "CMakeFiles/fl_fedkemf_test.dir/fl_fedkemf_test.cpp.o"
  "CMakeFiles/fl_fedkemf_test.dir/fl_fedkemf_test.cpp.o.d"
  "fl_fedkemf_test"
  "fl_fedkemf_test.pdb"
  "fl_fedkemf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_fedkemf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
