# Empty dependencies file for fl_fedkemf_test.
# This may be replaced when dependencies are built.
