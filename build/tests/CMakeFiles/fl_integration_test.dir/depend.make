# Empty dependencies file for fl_integration_test.
# This may be replaced when dependencies are built.
