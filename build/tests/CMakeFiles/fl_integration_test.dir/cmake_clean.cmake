file(REMOVE_RECURSE
  "CMakeFiles/fl_integration_test.dir/fl_integration_test.cpp.o"
  "CMakeFiles/fl_integration_test.dir/fl_integration_test.cpp.o.d"
  "fl_integration_test"
  "fl_integration_test.pdb"
  "fl_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
