# Empty dependencies file for fl_extras_test.
# This may be replaced when dependencies are built.
