file(REMOVE_RECURSE
  "CMakeFiles/fl_extras_test.dir/fl_extras_test.cpp.o"
  "CMakeFiles/fl_extras_test.dir/fl_extras_test.cpp.o.d"
  "fl_extras_test"
  "fl_extras_test.pdb"
  "fl_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
