# Empty dependencies file for fedmd_test.
# This may be replaced when dependencies are built.
