file(REMOVE_RECURSE
  "CMakeFiles/fedmd_test.dir/fedmd_test.cpp.o"
  "CMakeFiles/fedmd_test.dir/fedmd_test.cpp.o.d"
  "fedmd_test"
  "fedmd_test.pdb"
  "fedmd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
