file(REMOVE_RECURSE
  "CMakeFiles/fl_algorithms_test.dir/fl_algorithms_test.cpp.o"
  "CMakeFiles/fl_algorithms_test.dir/fl_algorithms_test.cpp.o.d"
  "fl_algorithms_test"
  "fl_algorithms_test.pdb"
  "fl_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
