# Empty dependencies file for fl_algorithms_test.
# This may be replaced when dependencies are built.
