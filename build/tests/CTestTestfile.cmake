# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_ops_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/utils_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/nn_grad_test[1]_include.cmake")
include("/root/repo/build/tests/nn_loss_test[1]_include.cmake")
include("/root/repo/build/tests/nn_optim_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/fl_core_test[1]_include.cmake")
include("/root/repo/build/tests/fl_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/fl_fedkemf_test[1]_include.cmake")
include("/root/repo/build/tests/fl_integration_test[1]_include.cmake")
include("/root/repo/build/tests/flops_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/resources_test[1]_include.cmake")
include("/root/repo/build/tests/feddf_test[1]_include.cmake")
include("/root/repo/build/tests/probe_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fl_extras_test[1]_include.cmake")
include("/root/repo/build/tests/fedmd_test[1]_include.cmake")
