file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_core.dir/rng.cpp.o"
  "CMakeFiles/fedkemf_core.dir/rng.cpp.o.d"
  "CMakeFiles/fedkemf_core.dir/serialize.cpp.o"
  "CMakeFiles/fedkemf_core.dir/serialize.cpp.o.d"
  "CMakeFiles/fedkemf_core.dir/tensor.cpp.o"
  "CMakeFiles/fedkemf_core.dir/tensor.cpp.o.d"
  "CMakeFiles/fedkemf_core.dir/tensor_ops.cpp.o"
  "CMakeFiles/fedkemf_core.dir/tensor_ops.cpp.o.d"
  "libfedkemf_core.a"
  "libfedkemf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
