# Empty dependencies file for fedkemf_core.
# This may be replaced when dependencies are built.
