
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/fedkemf_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/fedkemf_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/fedkemf_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/fedkemf_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/tensor.cpp" "src/core/CMakeFiles/fedkemf_core.dir/tensor.cpp.o" "gcc" "src/core/CMakeFiles/fedkemf_core.dir/tensor.cpp.o.d"
  "/root/repo/src/core/tensor_ops.cpp" "src/core/CMakeFiles/fedkemf_core.dir/tensor_ops.cpp.o" "gcc" "src/core/CMakeFiles/fedkemf_core.dir/tensor_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/utils/CMakeFiles/fedkemf_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
