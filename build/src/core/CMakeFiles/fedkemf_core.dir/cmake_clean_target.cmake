file(REMOVE_RECURSE
  "libfedkemf_core.a"
)
