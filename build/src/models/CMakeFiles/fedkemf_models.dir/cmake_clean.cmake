file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_models.dir/flops.cpp.o"
  "CMakeFiles/fedkemf_models.dir/flops.cpp.o.d"
  "CMakeFiles/fedkemf_models.dir/zoo.cpp.o"
  "CMakeFiles/fedkemf_models.dir/zoo.cpp.o.d"
  "libfedkemf_models.a"
  "libfedkemf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
