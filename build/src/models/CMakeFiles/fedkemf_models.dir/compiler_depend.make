# Empty compiler generated dependencies file for fedkemf_models.
# This may be replaced when dependencies are built.
