file(REMOVE_RECURSE
  "libfedkemf_models.a"
)
