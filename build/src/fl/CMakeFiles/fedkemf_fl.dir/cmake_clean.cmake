file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_fl.dir/algorithm.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/algorithm.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/class_metrics.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/class_metrics.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/config.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/config.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/fedavg.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/fedavg.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/feddf.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/feddf.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/federation.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/federation.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/fedkemf.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/fedkemf.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/fedmd.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/fedmd.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/fednova.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/fednova.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/fedprox.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/fedprox.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/metrics.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/resources.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/resources.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/runner.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/runner.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/scaffold.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/scaffold.cpp.o.d"
  "CMakeFiles/fedkemf_fl.dir/selection.cpp.o"
  "CMakeFiles/fedkemf_fl.dir/selection.cpp.o.d"
  "libfedkemf_fl.a"
  "libfedkemf_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
