file(REMOVE_RECURSE
  "libfedkemf_fl.a"
)
