# Empty compiler generated dependencies file for fedkemf_fl.
# This may be replaced when dependencies are built.
