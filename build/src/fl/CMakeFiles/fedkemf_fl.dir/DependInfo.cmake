
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/algorithm.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/algorithm.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/algorithm.cpp.o.d"
  "/root/repo/src/fl/class_metrics.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/class_metrics.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/class_metrics.cpp.o.d"
  "/root/repo/src/fl/config.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/config.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/config.cpp.o.d"
  "/root/repo/src/fl/fedavg.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/fedavg.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/fedavg.cpp.o.d"
  "/root/repo/src/fl/feddf.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/feddf.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/feddf.cpp.o.d"
  "/root/repo/src/fl/federation.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/federation.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/federation.cpp.o.d"
  "/root/repo/src/fl/fedkemf.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/fedkemf.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/fedkemf.cpp.o.d"
  "/root/repo/src/fl/fedmd.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/fedmd.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/fedmd.cpp.o.d"
  "/root/repo/src/fl/fednova.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/fednova.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/fednova.cpp.o.d"
  "/root/repo/src/fl/fedprox.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/fedprox.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/fedprox.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/metrics.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/metrics.cpp.o.d"
  "/root/repo/src/fl/resources.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/resources.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/resources.cpp.o.d"
  "/root/repo/src/fl/runner.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/runner.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/runner.cpp.o.d"
  "/root/repo/src/fl/scaffold.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/scaffold.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/scaffold.cpp.o.d"
  "/root/repo/src/fl/selection.cpp" "src/fl/CMakeFiles/fedkemf_fl.dir/selection.cpp.o" "gcc" "src/fl/CMakeFiles/fedkemf_fl.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedkemf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fedkemf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedkemf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/fedkemf_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/fedkemf_utils.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedkemf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
