
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/grad_check.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/grad_check.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/grad_check.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/probe.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/probe.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/probe.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/fedkemf_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/fedkemf_nn.dir/residual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedkemf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/fedkemf_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
