file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_nn.dir/activation.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/activation.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/conv.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/conv.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/dropout.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/flatten.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/grad_check.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/grad_check.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/init.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/init.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/linear.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/linear.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/loss.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/module.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/module.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/norm.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/norm.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/optim.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/optim.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/pooling.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/probe.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/probe.cpp.o.d"
  "CMakeFiles/fedkemf_nn.dir/residual.cpp.o"
  "CMakeFiles/fedkemf_nn.dir/residual.cpp.o.d"
  "libfedkemf_nn.a"
  "libfedkemf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
