file(REMOVE_RECURSE
  "libfedkemf_nn.a"
)
