# Empty dependencies file for fedkemf_nn.
# This may be replaced when dependencies are built.
