file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_comm.dir/channel.cpp.o"
  "CMakeFiles/fedkemf_comm.dir/channel.cpp.o.d"
  "CMakeFiles/fedkemf_comm.dir/compression.cpp.o"
  "CMakeFiles/fedkemf_comm.dir/compression.cpp.o.d"
  "CMakeFiles/fedkemf_comm.dir/model_io.cpp.o"
  "CMakeFiles/fedkemf_comm.dir/model_io.cpp.o.d"
  "libfedkemf_comm.a"
  "libfedkemf_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
