# Empty compiler generated dependencies file for fedkemf_comm.
# This may be replaced when dependencies are built.
