file(REMOVE_RECURSE
  "libfedkemf_comm.a"
)
