file(REMOVE_RECURSE
  "libfedkemf_data.a"
)
