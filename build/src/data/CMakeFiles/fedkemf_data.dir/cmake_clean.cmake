file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_data.dir/dataloader.cpp.o"
  "CMakeFiles/fedkemf_data.dir/dataloader.cpp.o.d"
  "CMakeFiles/fedkemf_data.dir/dataset.cpp.o"
  "CMakeFiles/fedkemf_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedkemf_data.dir/partition.cpp.o"
  "CMakeFiles/fedkemf_data.dir/partition.cpp.o.d"
  "CMakeFiles/fedkemf_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedkemf_data.dir/synthetic.cpp.o.d"
  "libfedkemf_data.a"
  "libfedkemf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
