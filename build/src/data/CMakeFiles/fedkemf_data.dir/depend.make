# Empty dependencies file for fedkemf_data.
# This may be replaced when dependencies are built.
