file(REMOVE_RECURSE
  "libfedkemf_utils.a"
)
