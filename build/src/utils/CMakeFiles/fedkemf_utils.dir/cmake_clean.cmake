file(REMOVE_RECURSE
  "CMakeFiles/fedkemf_utils.dir/cli.cpp.o"
  "CMakeFiles/fedkemf_utils.dir/cli.cpp.o.d"
  "CMakeFiles/fedkemf_utils.dir/logging.cpp.o"
  "CMakeFiles/fedkemf_utils.dir/logging.cpp.o.d"
  "CMakeFiles/fedkemf_utils.dir/table.cpp.o"
  "CMakeFiles/fedkemf_utils.dir/table.cpp.o.d"
  "CMakeFiles/fedkemf_utils.dir/thread_pool.cpp.o"
  "CMakeFiles/fedkemf_utils.dir/thread_pool.cpp.o.d"
  "libfedkemf_utils.a"
  "libfedkemf_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedkemf_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
