# Empty compiler generated dependencies file for fedkemf_utils.
# This may be replaced when dependencies are built.
