# Empty compiler generated dependencies file for bench_table2_comm_cost_convergence.
# This may be replaced when dependencies are built.
