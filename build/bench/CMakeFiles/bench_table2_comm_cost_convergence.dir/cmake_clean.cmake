file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_comm_cost_convergence.dir/bench_table2_comm_cost_convergence.cpp.o"
  "CMakeFiles/bench_table2_comm_cost_convergence.dir/bench_table2_comm_cost_convergence.cpp.o.d"
  "bench_table2_comm_cost_convergence"
  "bench_table2_comm_cost_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_comm_cost_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
