# Empty dependencies file for bench_ablation_distillation.
# This may be replaced when dependencies are built.
