file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_distillation.dir/bench_ablation_distillation.cpp.o"
  "CMakeFiles/bench_ablation_distillation.dir/bench_ablation_distillation.cpp.o.d"
  "bench_ablation_distillation"
  "bench_ablation_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
