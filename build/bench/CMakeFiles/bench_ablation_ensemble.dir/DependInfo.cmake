
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_ensemble.cpp" "bench/CMakeFiles/bench_ablation_ensemble.dir/bench_ablation_ensemble.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_ensemble.dir/bench_ablation_ensemble.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/fedkemf_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fedkemf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedkemf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/fedkemf_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedkemf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedkemf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/fedkemf_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
