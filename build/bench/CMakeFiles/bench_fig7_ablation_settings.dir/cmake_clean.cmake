file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ablation_settings.dir/bench_fig7_ablation_settings.cpp.o"
  "CMakeFiles/bench_fig7_ablation_settings.dir/bench_fig7_ablation_settings.cpp.o.d"
  "bench_fig7_ablation_settings"
  "bench_fig7_ablation_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ablation_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
