file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_comm_cost_target.dir/bench_table1_comm_cost_target.cpp.o"
  "CMakeFiles/bench_table1_comm_cost_target.dir/bench_table1_comm_cost_target.cpp.o.d"
  "bench_table1_comm_cost_target"
  "bench_table1_comm_cost_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_comm_cost_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
