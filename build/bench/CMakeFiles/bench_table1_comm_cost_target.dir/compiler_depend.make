# Empty compiler generated dependencies file for bench_table1_comm_cost_target.
# This may be replaced when dependencies are built.
