file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_multimodel.dir/bench_table3_multimodel.cpp.o"
  "CMakeFiles/bench_table3_multimodel.dir/bench_table3_multimodel.cpp.o.d"
  "bench_table3_multimodel"
  "bench_table3_multimodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_multimodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
