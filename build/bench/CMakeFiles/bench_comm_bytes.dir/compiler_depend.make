# Empty compiler generated dependencies file for bench_comm_bytes.
# This may be replaced when dependencies are built.
