file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_bytes.dir/bench_comm_bytes.cpp.o"
  "CMakeFiles/bench_comm_bytes.dir/bench_comm_bytes.cpp.o.d"
  "bench_comm_bytes"
  "bench_comm_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
