file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_aware.dir/bench_resource_aware.cpp.o"
  "CMakeFiles/bench_resource_aware.dir/bench_resource_aware.cpp.o.d"
  "bench_resource_aware"
  "bench_resource_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
