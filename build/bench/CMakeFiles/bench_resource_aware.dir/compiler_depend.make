# Empty compiler generated dependencies file for bench_resource_aware.
# This may be replaced when dependencies are built.
